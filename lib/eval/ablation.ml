open Spamlab_stats
module Options = Spamlab_spambayes.Options
module Attack = Spamlab_core.Dictionary_attack

type row = {
  setting : string;
  clean_ham_misclassified : float;
  clean_spam_misclassified : float;
  attacked_ham_as_spam : float;
  attacked_ham_misclassified : float;
}

(* Shared environment: one corpus, one base filter, one poisoned filter
   (the scoring indicator depends only on the token DB, so option sweeps
   can rescore the same filters under different options — except the
   discriminator options, which affect scoring itself and force a
   rescore rather than a retrain). *)
type env = {
  base : Spamlab_spambayes.Filter.t;
  poisoned : Spamlab_spambayes.Filter.t;
  test : Spamlab_corpus.Dataset.example array;
}

let make_env lab =
  let size = max 400 (int_of_float (2_000.0 *. Lab.scale lab)) in
  let train = Lab.corpus lab ~name:"ablation/train" ~size ~spam_fraction:0.5 in
  let test =
    Lab.corpus lab ~name:"ablation/test" ~size:(size / 5) ~spam_fraction:0.5
  in
  let base = Poison.base_filter (Lab.tokenizer lab) train in
  let payload =
    Attack.payload (Lab.tokenizer lab)
      (Attack.make ~name:"usenet"
         ~words:(Lab.usenet_top lab ~size:(max 19_000 (Array.length train * 9))))
  in
  let count = Poison.attack_count ~train_size:size ~fraction:0.01 in
  let poisoned = Poison.poisoned base ~payload ~count in
  { base; poisoned; test }

let measure env options =
  let module Filter = Spamlab_spambayes.Filter in
  let score filter =
    Poison.confusion_of_scores options
      (Array.map
         (fun (e : Spamlab_corpus.Dataset.example) ->
           ( (Spamlab_spambayes.Classify.score_ids options
                (Filter.db filter) e.Spamlab_corpus.Dataset.ids)
               .Spamlab_spambayes.Classify.indicator,
             e.Spamlab_corpus.Dataset.label ))
         env.test)
  in
  let clean = score env.base in
  let attacked = score env.poisoned in
  ( 100.0 *. Confusion.ham_misclassified_rate clean,
    100.0 *. Confusion.spam_misclassified_rate clean,
    100.0 *. Confusion.ham_as_spam_rate attacked,
    100.0 *. Confusion.ham_misclassified_rate attacked )

let sweep env settings =
  List.map
    (fun (setting, options) ->
      let chm, csm, ahs, ahm = measure env options in
      {
        setting;
        clean_ham_misclassified = chm;
        clean_spam_misclassified = csm;
        attacked_ham_as_spam = ahs;
        attacked_ham_misclassified = ahm;
      })
    settings

let discriminator_sweep lab =
  let env = make_env lab in
  sweep env
    (List.map
       (fun n ->
         ( Printf.sprintf "max_discriminators=%d" n,
           { Options.default with Options.max_discriminators = n } ))
       [ 10; 50; 150; 300 ])

let band_sweep lab =
  let env = make_env lab in
  sweep env
    (List.map
       (fun b ->
         ( Printf.sprintf "min_strength=%.2f" b,
           { Options.default with Options.minimum_prob_strength = b } ))
       [ 0.0; 0.05; 0.1; 0.2 ])

(* Prior strength changes f(w), i.e. scoring, not training — the same
   rescoring trick applies. *)
let smoothing_sweep lab =
  let env = make_env lab in
  sweep env
    (List.map
       (fun s ->
         ( Printf.sprintf "s=%.3f" s,
           { Options.default with Options.unknown_word_strength = s } ))
       [ 0.045; 0.45; 4.5; 45.0 ])

let coverage_sweep lab =
  let rng = Lab.rng lab "ablation-coverage" in
  let size = max 400 (int_of_float (2_000.0 *. Lab.scale lab)) in
  let train =
    Lab.corpus lab ~name:"ablation-coverage/train" ~size ~spam_fraction:0.5
  in
  let test =
    Lab.corpus lab ~name:"ablation-coverage/test" ~size:(size / 5)
      ~spam_fraction:0.5
  in
  let base = Poison.base_filter (Lab.tokenizer lab) train in
  let optimal = Lab.optimal_words lab in
  let total = Array.length optimal in
  let count = Poison.attack_count ~train_size:size ~fraction:0.01 in
  List.map
    (fun coverage ->
      let known = int_of_float (coverage *. float_of_int total) in
      let words =
        if known = 0 then Spamlab_corpus.Wordgen.words 50_000_000 total
        else
          Array.append
            (Rng.sample_without_replacement rng known optimal)
            (* Pad with filler so every attacker sends the same volume. *)
            (Spamlab_corpus.Wordgen.words 50_000_000 (total - known))
      in
      let payload =
        Attack.payload (Lab.tokenizer lab)
          (Attack.make ~name:"coverage" ~words)
      in
      let poisoned = Poison.poisoned base ~payload ~count in
      let confusion =
        Poison.confusion_of_scores Options.default
          (Poison.score_examples poisoned test)
      in
      ( coverage,
        100.0 *. Confusion.ham_as_spam_rate confusion,
        100.0 *. Confusion.ham_misclassified_rate confusion ))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let render_rows ~title rows =
  title ^ "\n\n"
  ^ Table.render
      ~header:
        [
          "setting"; "clean ham miscls %"; "clean spam miscls %";
          "attacked ham->spam %"; "attacked ham miscls %";
        ]
      ~rows:
        (List.map
           (fun r ->
             [
               r.setting;
               Table.f2 r.clean_ham_misclassified;
               Table.f2 r.clean_spam_misclassified;
               Table.f2 r.attacked_ham_as_spam;
               Table.f2 r.attacked_ham_misclassified;
             ])
           rows)

let render_coverage rows =
  "Constrained attacker (Section 3.4): ham-vocabulary coverage vs damage\n\
   at 1% training-set control (attack volume held constant)\n\n"
  ^ Table.render
      ~header:[ "coverage"; "ham->spam %"; "ham->spam|unsure %" ]
      ~rows:
        (List.map
           (fun (c, s, m) ->
             [ Printf.sprintf "%.2f" c; Table.f2 s; Table.f2 m ])
           rows)
  ^ "\n"
  ^ Plot.line_chart ~y_max:100.0 ~x_label:"fraction of ham vocabulary known"
      ~y_label:"percent of test ham misclassified"
      [ ("ham as spam or unsure", List.map (fun (c, _, m) -> (c, m)) rows);
        ("ham as spam", List.map (fun (c, s, _) -> (c, s)) rows) ]
