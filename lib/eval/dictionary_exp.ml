module Dataset = Spamlab_corpus.Dataset
module Dictionary = Spamlab_corpus.Dictionary
module Filter = Spamlab_spambayes.Filter
module Options = Spamlab_spambayes.Options
module Attack = Spamlab_core.Dictionary_attack

type point = {
  fraction : float;
  attack_emails : int;
  ham_as_spam : float;
  ham_misclassified : float;
  ham_misclassified_sd : float;
      (* Std-dev across folds - the error bars the paper omits
         "since we observed that the variation on our tests was
         small" (Section 4.1); reported so the claim is checkable. *)
  spam_as_ham : float;
  spam_as_unsure : float;
}

type series = { variant : string; points : point list }

type result = {
  series : series list;
  aspell_usenet_overlap : int;
  aspell_words : int;
  usenet_words : int;
}

let variants lab (params : Params.dictionary) =
  [
    Attack.make ~name:"optimal" ~words:(Lab.optimal_words lab);
    Attack.make ~name:"usenet"
      ~words:(Lab.usenet_top lab ~size:params.usenet_size);
    Attack.make ~name:"aspell"
      ~words:(Lab.aspell lab ~size:params.dictionary_size);
  ]

let run lab (params : Params.dictionary) =
  let tokenizer = Lab.tokenizer lab in
  let examples =
    Lab.corpus lab ~name:"dictionary-attack" ~size:params.train_size
      ~spam_fraction:params.spam_prevalence
  in
  let folds = Dataset.kfold ~k:params.folds examples in
  let attacks = variants lab params in
  let payloads =
    List.map (fun attack -> (attack, Attack.payload tokenizer attack)) attacks
  in
  (* Corpus and payloads are fully interned by now; freezing makes the
     in-task id lookups lock-free. *)
  Spamlab_spambayes.Intern.freeze ();
  (* Checkpoint wire encoding of one fold's confusion matrices:
     payloads joined by '|', fractions by ';', the six cells by ','. *)
  let encode per_payload =
    String.concat "|"
      (List.map
         (fun per_fraction ->
           String.concat ";"
             (List.map
                (fun c ->
                  String.concat ","
                    (List.map string_of_int
                       (Array.to_list (Confusion.cells c))))
                per_fraction))
         per_payload)
  in
  let decode _fold s =
    let ( let* ) = Option.bind in
    let map_opt f l =
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          let* y = f x in
          Some (y :: acc))
        l (Some [])
    in
    let confusion s =
      let* ints = map_opt int_of_string_opt (String.split_on_char ',' s) in
      Confusion.of_cells (Array.of_list ints)
    in
    let fraction_list s =
      let parts = String.split_on_char ';' s in
      if List.length parts <> List.length params.attack_fractions then None
      else map_opt confusion parts
    in
    let parts = String.split_on_char '|' s in
    if List.length parts <> List.length payloads then None
    else map_opt fraction_list parts
  in
  (* Folds are independent (no randomness is consumed past corpus
     generation), so they fan across the domain pool; each fold sweeps
     every (variant, fraction) incrementally and returns its confusion
     matrices, which are merged in fold order after the join.  Under a
     checkpoint, completed folds are restored instead of recomputed. *)
  let fold_results =
    Lab.checkpointed_map lab ~stage:"dictionary/fold" ~encode ~decode
      (fun (train, test) ->
        Spamlab_obs.Obs.span "dictionary.fold" @@ fun () ->
        let base = Poison.base_filter tokenizer train in
        let counts =
          List.map
            (fun fraction ->
              Poison.attack_count ~train_size:(Array.length train) ~fraction)
            params.attack_fractions
        in
        List.map
          (fun (_, payload) ->
            List.map
              (fun scores ->
                Poison.confusion_of_scores Options.default scores)
              (Poison.sweep base ~payload ~counts test))
          payloads)
      folds
  in
  (* Accumulate one confusion matrix per (variant, fraction), plus the
     per-fold ham-misclassification rates for dispersion reporting. *)
  let cells = Hashtbl.create 64 in
  let cell variant fraction =
    match Hashtbl.find_opt cells (variant, fraction) with
    | Some c -> c
    | None ->
        let c = (ref (Confusion.create ()), ref []) in
        Hashtbl.replace cells (variant, fraction) c;
        c
  in
  Array.iter
    (fun per_variant ->
      List.iter2
        (fun (attack, _) per_fraction ->
          List.iter2
            (fun fraction confusion ->
              let total, per_fold = cell (Attack.name attack) fraction in
              total := Confusion.merge !total confusion;
              per_fold :=
                Confusion.ham_misclassified_rate confusion :: !per_fold)
            params.attack_fractions per_fraction)
        payloads per_variant)
    fold_results;
  let series =
    List.map
      (fun (attack, _) ->
        let points =
          List.map
            (fun fraction ->
              let total, per_fold = cell (Attack.name attack) fraction in
              let confusion = !total in
              let dispersion =
                match !per_fold with
                | [] | [ _ ] -> 0.0
                | rates ->
                    100.0
                    *. Spamlab_stats.Summary.std_dev
                         (Array.of_list rates)
              in
              let train_size =
                Array.length examples
                - (Array.length examples / params.folds)
              in
              {
                fraction;
                attack_emails =
                  Poison.attack_count ~train_size ~fraction;
                ham_as_spam =
                  100.0 *. Confusion.ham_as_spam_rate confusion;
                ham_misclassified =
                  100.0 *. Confusion.ham_misclassified_rate confusion;
                ham_misclassified_sd = dispersion;
                spam_as_ham = 100.0 *. Confusion.spam_as_ham_rate confusion;
                spam_as_unsure =
                  100.0 *. Confusion.spam_as_unsure_rate confusion;
              })
            params.attack_fractions
        in
        { variant = Attack.name attack; points })
      payloads
  in
  let aspell = Lab.aspell lab ~size:params.dictionary_size in
  let usenet = Lab.usenet_top lab ~size:params.usenet_size in
  {
    series;
    aspell_usenet_overlap = Dictionary.overlap_count aspell usenet;
    aspell_words = Array.length aspell;
    usenet_words = Array.length usenet;
  }

let token_volume lab (params : Params.dictionary) ~fraction =
  let tokenizer = Lab.tokenizer lab in
  (* Same stream name as [run]: token-volume accounting describes the
     same world as Figure 1, and in a [bench all] run the corpus is a
     cache hit rather than a regeneration. *)
  let examples =
    Lab.corpus lab ~name:"dictionary-attack" ~size:params.train_size
      ~spam_fraction:params.spam_prevalence
  in
  let corpus_tokens = Dataset.total_raw_tokens examples in
  let count =
    Poison.attack_count ~train_size:params.train_size ~fraction
  in
  let rows =
    List.map
      (fun attack ->
        let per_email = Attack.raw_token_count tokenizer attack in
        let attack_tokens = per_email * count in
        [
          Attack.name attack;
          string_of_int (Attack.word_count attack);
          string_of_int count;
          string_of_int attack_tokens;
          Printf.sprintf "%.1fx"
            (float_of_int attack_tokens /. float_of_int corpus_tokens);
        ])
      (variants lab params)
  in
  Printf.sprintf
    "Token volume at %.1f%% message control (%d attack emails)\n\
     clean corpus: %d messages, %d token instances\n\n%s"
    (100.0 *. fraction) count params.train_size corpus_tokens
    (Table.render
       ~header:
         [ "variant"; "words"; "emails"; "attack tokens"; "vs corpus" ]
       ~rows)

let render result =
  let table =
    let rows =
      List.concat_map
        (fun { variant; points } ->
          List.map
            (fun p ->
              [
                variant;
                Printf.sprintf "%.1f" (100.0 *. p.fraction);
                string_of_int p.attack_emails;
                Table.f2 p.ham_as_spam;
                Printf.sprintf "%s +/-%s" (Table.f2 p.ham_misclassified)
                  (Table.f2 p.ham_misclassified_sd);
                Table.f2 p.spam_as_ham;
                Table.f2 p.spam_as_unsure;
              ])
            points)
        result.series
    in
    Table.render
      ~header:
        [
          "variant"; "attack %"; "emails"; "ham->spam %";
          "ham->spam|unsure %"; "spam->ham %"; "spam->unsure %";
        ]
      ~rows
  in
  let chart =
    Plot.line_chart ~y_max:100.0 ~x_label:"percent control of training set"
      ~y_label:"percent of test ham misclassified (spam or unsure)"
      (List.map
         (fun { variant; points } ->
           ( variant,
             List.map
               (fun p -> (100.0 *. p.fraction, p.ham_misclassified))
               points ))
         result.series)
  in
  Printf.sprintf
    "Figure 1: dictionary attacks vs. percent control\n\
     aspell %d words, usenet %d words, overlap %d words\n\n%s\n%s"
    result.aspell_words result.usenet_words result.aspell_usenet_overlap
    table chart
