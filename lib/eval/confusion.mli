(** Three-way confusion accounting.

    SpamBayes emits ham/unsure/spam, so the evaluation tracks a 2×3
    matrix.  The paper's headline quantities are the ham rows: ham
    classified as spam (false positives proper) and ham classified as
    spam {e or} unsure (the user-visible damage, §2.1). *)

type t

val create : unit -> t

val add : t -> Spamlab_spambayes.Label.gold -> Spamlab_spambayes.Label.verdict -> unit

val merge : t -> t -> t
(** Sum of two matrices (neither input is modified). *)

val cells : t -> int array
(** The six counts in row-major order
    [[|ham->ham; ham->unsure; ham->spam; spam->ham; spam->unsure;
    spam->spam|]] — the checkpoint wire encoding. *)

val of_cells : int array -> t option
(** Inverse of {!cells}; [None] unless exactly six non-negative
    counts. *)

val count :
  t -> Spamlab_spambayes.Label.gold -> Spamlab_spambayes.Label.verdict -> int

val total : t -> int
val total_ham : t -> int
val total_spam : t -> int

val ham_as_spam_rate : t -> float
(** Fraction of ham classified spam; 0 when no ham was seen. *)

val ham_as_unsure_rate : t -> float
val ham_misclassified_rate : t -> float
(** Ham classified spam or unsure. *)

val spam_as_ham_rate : t -> float
val spam_as_unsure_rate : t -> float
val spam_misclassified_rate : t -> float

val accuracy : t -> float
(** Exact-agreement rate over everything seen. *)

val pp : Format.formatter -> t -> unit
