(** Append-only JSONL checkpoint for resumable experiment sweeps.

    A sweep records each completed grid point as one
    [{"k":"<stage>/<index>","v":"<encoded result>"}] line; a resumed
    run ([--resume]) loads the surviving lines and skips every cell it
    already has (see {!Lab.checkpointed_map}).  The first line is a
    header carrying a params string (seed and scale): resuming against
    a checkpoint written under different params is refused rather than
    silently mixing two different worlds.

    Crash tolerance: every record is flushed before the experiment
    proceeds, lines are self-delimiting, and the loader skips anything
    unparseable — so a file torn mid-line by a kill loses at most the
    final record, never the file.  Duplicate keys are legal (a retried
    task records twice); the last occurrence wins.

    Fault site: [checkpoint.record] fires after a record lands,
    simulating a kill between one grid point and the next. *)

type t

val open_ : path:string -> params:string -> resume:bool -> (t, string) result
(** Open a checkpoint at [path].  With [resume = false] the file is
    truncated and a fresh header written.  With [resume = true] an
    existing file is validated (format, version, params — mismatch is
    [Error]) and its entries loaded; a missing file starts fresh.
    [params] is free-form but must match exactly on resume. *)

val find : t -> string -> string option
(** The recorded value for a key, if any. *)

val record : t -> key:string -> value:string -> unit
(** Append one entry and flush.  Safe to call from pool workers. *)

val entries : t -> int
(** Number of distinct keys currently held (loaded + recorded). *)

val close : t -> unit
(** Flush and close the underlying channel.  Idempotent; {!record}
    after close is a silent no-op. *)
