open Spamlab_stats
module Dataset = Spamlab_corpus.Dataset
module Generator = Spamlab_corpus.Generator
module Roni = Spamlab_core.Roni
module Attack = Spamlab_core.Dictionary_attack

type group = {
  name : string;
  queries : int;
  min_impact : float;
  mean_impact : float;
  max_impact : float;
  rejected : int;
}

type result = {
  threshold : float;
  non_attack : group;
  attacks : group list;
  separated : bool;
}

(* The paper tests "seven variants of the dictionary attacks": the three
   Figure-1 word sources plus truncations of the Usenet and aspell
   lists. *)
let attack_variants lab =
  let usenet size = Lab.usenet_top lab ~size in
  let scale = Lab.scale lab in
  let sz n = max 2_000 (int_of_float (scale *. float_of_int n)) in
  [
    Attack.make ~name:"optimal" ~words:(Lab.optimal_words lab);
    Attack.make ~name:"usenet-90k" ~words:(usenet (sz 90_000));
    Attack.make ~name:"usenet-50k" ~words:(usenet (sz 50_000));
    Attack.make ~name:"usenet-25k" ~words:(usenet (sz 25_000));
    Attack.make ~name:"usenet-10k" ~words:(usenet (sz 10_000));
    Attack.make ~name:"aspell-98k"
      ~words:(Lab.aspell lab ~size:(sz Spamlab_corpus.Dictionary.aspell_size));
    Attack.make ~name:"aspell-50k" ~words:(Lab.aspell lab ~size:(sz 50_000));
  ]

let group_of name impacts rejections =
  {
    name;
    queries = Array.length impacts;
    min_impact = fst (Summary.min_max impacts);
    mean_impact = Summary.mean impacts;
    max_impact = snd (Summary.min_max impacts);
    rejected = rejections;
  }

let run lab (params : Params.roni) =
  let config =
    {
      Roni.train_size = params.train_size;
      validation_size = params.validation_size;
      trials = params.trials;
      threshold = Roni.default_config.Roni.threshold;
    }
  in
  let pool =
    Lab.corpus lab ~name:"roni" ~size:params.pool_size ~spam_fraction:0.5
  in
  let tokenizer = Lab.tokenizer lab in
  (* The shared pool's vocabulary is interned; freeze so the thousands
     of in-task count lookups and candidate internings are lock-free. *)
  Spamlab_spambayes.Intern.freeze ();
  (* Every RONI query (train/validate resampling trials over the shared
     pool) is independent; each derives its own named randomness stream
     and the whole query population fans across the domain pool.  Only
     the two group-level facts survive per query — mean ham impact and
     whether it crossed the rejection threshold — so that pair is also
     the checkpoint wire value (hex float for exact round-trip). *)
  let assess_tokens stream tokens =
    let a = Roni.assess ~config (Lab.rng lab stream) ~pool ~candidate:tokens in
    (a.Roni.mean_ham_impact, a.Roni.rejected)
  in
  let encode (impact, rejected) = Printf.sprintf "%h %B" impact rejected in
  let decode _item s =
    Scanf.sscanf_opt s "%h %B%!" (fun impact rejected -> (impact, rejected))
  in
  let impacts_of assessments = Array.map fst assessments in
  let rejections_of assessments =
    Array.fold_left
      (fun acc (_, rejected) -> if rejected then acc + 1 else acc)
      0 assessments
  in
  (* Non-attack queries: fresh ordinary spam messages. *)
  let non_attack_assessments =
    Lab.checkpointed_map lab ~stage:"roni/non-attack" ~encode ~decode
      (fun i ->
        Spamlab_obs.Obs.span "roni.non_attack" @@ fun () ->
        let stream = Printf.sprintf "roni/non-attack-%d" i in
        let msg =
          Generator.spam (Lab.config lab)
            (Lab.rng lab (stream ^ "/message"))
        in
        assess_tokens stream
          (Spamlab_tokenizer.Tokenizer.unique_tokens tokenizer msg))
      (Array.init params.non_attack_queries (fun i -> i))
  in
  let non_attack =
    group_of "non-attack spam"
      (impacts_of non_attack_assessments)
      (rejections_of non_attack_assessments)
  in
  (* Attack queries: attack_repetitions assessments per variant, flattened
     into one fan-out.  Payloads are built by the [prepare] hook, before
     any fan-out but only when some query actually needs computing (the
     lab's word-source caches are not domain-safe, and a fully-restored
     resume should not tokenize seven dictionaries). *)
  let variants = attack_variants lab in
  let payloads = ref [||] in
  let prepare _queries =
    payloads :=
      Array.of_list
        (List.map
           (fun attack ->
             (Attack.name attack, Attack.payload tokenizer attack))
           variants);
    Spamlab_spambayes.Intern.freeze ()
  in
  let queries =
    Array.init
      (List.length variants * params.attack_repetitions)
      (fun i ->
        (i / params.attack_repetitions, i mod params.attack_repetitions))
  in
  let attack_assessments =
    Lab.checkpointed_map lab ~stage:"roni/attack" ~prepare ~encode ~decode
      (fun (variant, repetition) ->
        Spamlab_obs.Obs.span "roni.attack" @@ fun () ->
        let name, payload = !payloads.(variant) in
        assess_tokens
          (Printf.sprintf "roni/attack-%s/rep-%d" name repetition)
          payload)
      queries
  in
  let attacks =
    List.mapi
      (fun variant attack ->
        let assessments =
          Array.sub attack_assessments
            (variant * params.attack_repetitions)
            params.attack_repetitions
        in
        group_of (Attack.name attack) (impacts_of assessments)
          (rejections_of assessments))
      variants
  in
  let separated =
    List.for_all (fun g -> g.min_impact > non_attack.max_impact) attacks
  in
  { threshold = config.Roni.threshold; non_attack; attacks; separated }

let render result =
  let row g =
    [
      g.name;
      string_of_int g.queries;
      Table.f2 g.min_impact;
      Table.f2 g.mean_impact;
      Table.f2 g.max_impact;
      Printf.sprintf "%d/%d" g.rejected g.queries;
    ]
  in
  let table =
    Table.render
      ~header:
        [ "query group"; "n"; "min impact"; "mean impact"; "max impact";
          "rejected" ]
      ~rows:(row result.non_attack :: List.map row result.attacks)
  in
  let attack_min =
    List.fold_left (fun acc g -> Float.min acc g.min_impact) infinity
      result.attacks
  in
  Printf.sprintf
    "RONI defense (Section 5.1): per-email training impact\n\
     impact = mean decrease in validation ham classified as ham\n\
     rejection threshold: impact > %.2f\n\n%s\n\
     separation: attack minimum %.2f vs non-attack maximum %.2f -> %s\n"
    result.threshold table attack_min result.non_attack.max_impact
    (if result.separated then "clean separation (defense succeeds)"
     else "overlap (defense imperfect at this scale)")
