open Spamlab_stats
module Dataset = Spamlab_corpus.Dataset
module Generator = Spamlab_corpus.Generator
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Message = Spamlab_email.Message
module Attack = Spamlab_core.Focused_attack

type outcome = { ham_pct : float; unsure_pct : float; spam_pct : float }

type setup = {
  base : Filter.t;
  header_pool : Spamlab_email.Header.t array;
}

(* One repetition's fixed environment: a clean trained inbox and the
   spam headers the attacker can steal. *)
let make_setup lab ~name (params : Params.focused) =
  let messages =
    Lab.corpus_messages lab ~name ~size:params.inbox_size
      ~spam_fraction:params.spam_prevalence
  in
  let examples = Dataset.of_labeled (Lab.tokenizer lab) messages in
  let base = Poison.base_filter (Lab.tokenizer lab) examples in
  let header_pool =
    Array.map Message.headers (Spamlab_corpus.Trec.spam_only messages)
  in
  { base; header_pool }

let attack_verdict setup rng ~target ~p ~count =
  let plan =
    Attack.craft rng ~target ~p ~count ~header_pool:setup.header_pool
  in
  let filter = Filter.copy setup.base in
  Attack.train filter plan;
  ((Filter.classify filter target).Classify.verdict, plan, filter)

let outcome_of_counts ham unsure spam =
  let total = float_of_int (max 1 (ham + unsure + spam)) in
  {
    ham_pct = 100.0 *. float_of_int ham /. total;
    unsure_pct = 100.0 *. float_of_int unsure /. total;
    spam_pct = 100.0 *. float_of_int spam /. total;
  }

(* Shared driver: for each x in xs, classify every (rep, target) pair
   under the attack given by [attack_of x] and count verdicts.

   Two fan-outs over the domain pool: the per-repetition clean inboxes
   (corpus generation plus training — the expensive part), then the
   (repetition, target) grid.  Every task derives its own named
   randomness stream, so the verdicts — and hence the counts, summed
   after the join — are identical at any jobs setting. *)
let sweep lab (params : Params.focused) ~stream_name ~xs ~attack_of =
  let pool = Lab.pool lab in
  (* Per-repetition environments are built by the [prepare] hook, which
     under a checkpoint sees only the (rep, target) pairs that still
     need computing — so a mostly-restored resume trains only the
     inboxes it actually touches.  Checkpoint-free runs prepare every
     repetition, exactly as before. *)
  let setups = Array.make params.repetitions None in
  let prepare pairs =
    let needed =
      Array.to_list (Array.map fst pairs)
      |> List.sort_uniq compare
      |> List.filter (fun rep -> setups.(rep) = None)
      |> Array.of_list
    in
    let built =
      Spamlab_parallel.Pool.map_array pool
        (fun rep ->
          Spamlab_obs.Obs.span "focused.setup" @@ fun () ->
          make_setup lab
            ~name:(Printf.sprintf "%s/rep-%d/corpus" stream_name rep)
            params)
        needed
    in
    Array.iteri (fun j rep -> setups.(rep) <- Some built.(j)) needed
  in
  let pairs =
    Array.init
      (params.repetitions * params.targets)
      (fun i -> (i / params.targets, i mod params.targets))
  in
  (* One checkpoint value per pair: the verdict at each x, one
     character each. *)
  let encode verdicts =
    String.concat ""
      (List.map
         (function
           | Label.Ham_v -> "h" | Label.Unsure_v -> "u" | Label.Spam_v -> "s")
         verdicts)
  in
  let nxs = List.length xs in
  let decode _pair s =
    if String.length s <> nxs then None
    else
      String.fold_right
        (fun c acc ->
          Option.bind acc (fun vs ->
              match c with
              | 'h' -> Some (Label.Ham_v :: vs)
              | 'u' -> Some (Label.Unsure_v :: vs)
              | 's' -> Some (Label.Spam_v :: vs)
              | _ -> None))
        s (Some [])
  in
  let verdicts =
    Lab.checkpointed_map lab ~stage:stream_name ~prepare ~encode ~decode
      (fun (rep, target_index) ->
        Spamlab_obs.Obs.span "focused.cell" @@ fun () ->
        let rng =
          Lab.rng lab
            (Printf.sprintf "%s/rep-%d/target-%d" stream_name rep target_index)
        in
        let setup =
          match setups.(rep) with Some s -> s | None -> assert false
        in
        let target = Generator.ham (Lab.config lab) rng in
        List.map
          (fun x ->
            let p, count = attack_of x in
            let verdict, _, _ = attack_verdict setup rng ~target ~p ~count in
            verdict)
          xs)
      pairs
  in
  List.mapi
    (fun i x ->
      let ham = ref 0 and unsure = ref 0 and spam = ref 0 in
      Array.iter
        (fun per_x ->
          match List.nth per_x i with
          | Label.Ham_v -> incr ham
          | Label.Unsure_v -> incr unsure
          | Label.Spam_v -> incr spam)
        verdicts;
      (x, outcome_of_counts !ham !unsure !spam))
    xs

let probability_sweep lab (params : Params.focused) =
  sweep lab params ~stream_name:"focused-probability"
    ~xs:params.guess_probabilities
    ~attack_of:(fun p -> (p, params.attack_count))

let volume_sweep lab (params : Params.focused) =
  sweep lab params ~stream_name:"focused-volume" ~xs:params.fractions
    ~attack_of:(fun fraction ->
      ( params.fixed_probability,
        Poison.attack_count ~train_size:params.inbox_size ~fraction ))

type token_shift = {
  token : string;
  before : float;
  after : float;
  included : bool;
}

type shift_report = {
  target_verdict_before : Label.verdict;
  target_verdict_after : Label.verdict;
  indicator_before : float;
  indicator_after : float;
  shifts : token_shift list;
}

let token_shifts lab (params : Params.focused) =
  let rng = Lab.rng lab "focused-token-shift" in
  let setup = make_setup lab ~name:"focused-token-shift/corpus" params in
  let wanted = [ Label.Spam_v; Label.Unsure_v; Label.Ham_v ] in
  let found : (Label.verdict * shift_report) list ref = ref [] in
  let attempts = max 20 (4 * params.targets) in
  let attempt = ref 0 in
  while
    List.length !found < List.length wanted && !attempt < attempts
  do
    incr attempt;
    let target = Generator.ham (Lab.config lab) rng in
    let verdict, plan, poisoned_filter =
      attack_verdict setup rng ~target ~p:params.fixed_probability
        ~count:params.attack_count
    in
    if
      List.mem verdict wanted
      && not (List.mem_assoc verdict !found)
    then begin
      let before_result = Filter.classify setup.base target in
      let after_result = Filter.classify poisoned_filter target in
      let guessed = Hashtbl.create 64 in
      List.iter (fun w -> Hashtbl.replace guessed w ()) plan.Attack.guessed;
      let shifts =
        Array.to_list (Filter.features setup.base target)
        |> List.map (fun token ->
               {
                 token;
                 before = Filter.token_score setup.base token;
                 after = Filter.token_score poisoned_filter token;
                 included = Hashtbl.mem guessed token;
               })
      in
      let report =
        {
          target_verdict_before = before_result.Classify.verdict;
          target_verdict_after = after_result.Classify.verdict;
          indicator_before = before_result.Classify.indicator;
          indicator_after = after_result.Classify.indicator;
          shifts;
        }
      in
      found := (verdict, report) :: !found
    end
  done;
  List.filter_map (fun v -> List.assoc_opt v !found) wanted

let render_outcomes title xs_label rows =
  Plot.stacked_bars ~title ~segments:[ "spam"; "unsure"; "ham" ]
    (List.map
       (fun (x, o) ->
         ( Printf.sprintf "%s=%.2f" xs_label x,
           [ o.spam_pct; o.unsure_pct; o.ham_pct ] ))
       rows)

let render_probability_sweep rows =
  let table =
    Table.render
      ~header:[ "p(guess)"; "target->spam %"; "target->unsure %"; "target->ham %";
                "attack success % (not ham)" ]
      ~rows:
        (List.map
           (fun (p, o) ->
             [
               Table.f2 p; Table.f2 o.spam_pct; Table.f2 o.unsure_pct;
               Table.f2 o.ham_pct; Table.f2 (o.spam_pct +. o.unsure_pct);
             ])
           rows)
  in
  "Figure 2: focused attack vs. probability of guessing target tokens\n\n"
  ^ table ^ "\n"
  ^ render_outcomes "verdict mix per guess probability" "p" rows

let render_volume_sweep rows =
  let table =
    Table.render
      ~header:
        [ "attack %"; "target->spam %"; "target->spam|unsure %" ]
      ~rows:
        (List.map
           (fun (f, o) ->
             [
               Printf.sprintf "%.1f" (100.0 *. f);
               Table.f2 o.spam_pct;
               Table.f2 (o.spam_pct +. o.unsure_pct);
             ])
           rows)
  in
  let chart =
    Plot.line_chart ~y_max:100.0 ~x_label:"percent control of training set"
      ~y_label:"percent of target ham misclassified"
      [
        ( "as spam",
          List.map (fun (f, o) -> (100.0 *. f, o.spam_pct)) rows );
        ( "as spam or unsure",
          List.map
            (fun (f, o) -> (100.0 *. f, o.spam_pct +. o.unsure_pct))
            rows );
      ]
  in
  "Figure 3: focused attack vs. attack volume (p = 0.5)\n\n" ^ table ^ "\n"
  ^ chart

let render_token_shifts reports =
  let render_one i report =
    let included, excluded =
      List.partition (fun s -> s.included) report.shifts
    in
    let stats label shifts =
      match shifts with
      | [] -> Printf.sprintf "  %s: none\n" label
      | _ ->
          let deltas =
            Array.of_list (List.map (fun s -> s.after -. s.before) shifts)
          in
          Printf.sprintf
            "  %s: %d tokens, mean score shift %+.3f (min %+.3f, max %+.3f)\n"
            label (List.length shifts)
            (Summary.mean deltas)
            (fst (Summary.min_max deltas))
            (snd (Summary.min_max deltas))
    in
    let scatter =
      Plot.line_chart ~width:50 ~height:16 ~y_max:1.0
        ~x_label:"token score before attack"
        ~y_label:"token score after attack"
        [
          ("included in attack", List.map (fun s -> (s.before, s.after)) included);
          ("not in attack", List.map (fun s -> (s.before, s.after)) excluded);
        ]
    in
    let before_hist = Histogram.create ~bins:10 ~lo:0.0 ~hi:1.0 () in
    let after_hist = Histogram.create ~bins:10 ~lo:0.0 ~hi:1.0 () in
    List.iter
      (fun s ->
        Histogram.add before_hist s.before;
        Histogram.add after_hist s.after)
      report.shifts;
    Printf.sprintf
      "Target %d: %s before attack (I=%.3f) -> %s after attack (I=%.3f)\n%s%s\n%s\n\
       score distribution before attack:\n%s\n\
       score distribution after attack:\n%s\n"
      (i + 1)
      (Label.verdict_to_string report.target_verdict_before)
      report.indicator_before
      (Label.verdict_to_string report.target_verdict_after)
      report.indicator_after
      (stats "included tokens" included)
      (stats "excluded tokens" excluded)
      scatter
      (Histogram.render ~width:30 before_hist)
      (Histogram.render ~width:30 after_hist)
  in
  "Figure 4: focused attack effect on individual token scores\n\n"
  ^ String.concat "\n" (List.mapi render_one reports)
