open Spamlab_stats
module Corpus = Spamlab_corpus

type t = {
  seed : int;
  scale : float;
  jobs : int;
  config : Corpus.Generator.config;
  tokenizer : Spamlab_tokenizer.Tokenizer.t;
  root : Rng.t;
  mutable usenet_full : string array option;
  mutable pool : Spamlab_parallel.Pool.t option;
}

let create ?(seed = 42) ?(scale = 1.0) ?jobs () =
  let jobs =
    match jobs with
    | Some j -> (
        match Spamlab_parallel.validate_jobs j with
        | Ok j -> j
        | Error msg -> invalid_arg msg)
    | None -> Spamlab_parallel.default_jobs ()
  in
  {
    seed;
    scale;
    jobs;
    config = Corpus.Generator.default_config ~seed ();
    tokenizer = Spamlab_tokenizer.Tokenizer.spambayes;
    root = Rng.create seed;
    usenet_full = None;
    pool = None;
  }

let seed t = t.seed
let scale t = t.scale
let jobs t = t.jobs
let config t = t.config
let tokenizer t = t.tokenizer

let pool t =
  match t.pool with
  | Some pool -> pool
  | None ->
      let pool = Spamlab_parallel.Pool.create ~jobs:t.jobs in
      t.pool <- Some pool;
      pool

let shutdown t =
  match t.pool with
  | None -> ()
  | Some pool ->
      t.pool <- None;
      Spamlab_parallel.Pool.shutdown pool

let rng t name = Rng.split_named t.root name

let vocabulary t = t.config.Corpus.Generator.vocabulary

let aspell t ~size = Corpus.Dictionary.aspell ~size (vocabulary t)

let usenet_full t =
  match t.usenet_full with
  | Some words -> words
  | None ->
      let words = Corpus.Usenet.ranked (vocabulary t) in
      t.usenet_full <- Some words;
      words

let usenet_top t ~size = Corpus.Usenet.top (usenet_full t) size

let optimal_words t =
  Corpus.Language_model.support t.config.Corpus.Generator.ham_model

let corpus_messages t rng ~size ~spam_fraction =
  Corpus.Trec.generate t.config rng ~size ~spam_fraction

let corpus t rng ~size ~spam_fraction =
  Corpus.Dataset.of_labeled t.tokenizer
    (corpus_messages t rng ~size ~spam_fraction)
