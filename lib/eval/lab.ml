open Spamlab_stats
module Corpus = Spamlab_corpus
module Obs = Spamlab_obs.Obs

type corpus_key = { name : string; size : int; spam_fraction : float }

type t = {
  seed : int;
  scale : float;
  jobs : int;
  config : Corpus.Generator.config;
  tokenizer : Spamlab_tokenizer.Tokenizer.t;
  root : Rng.t;
  usenet_full : string array option Atomic.t;
  lock : Mutex.t;  (* guards [pool] and [usenet_full] initialization *)
  mutable pool : Spamlab_parallel.Pool.t option;
  cache_lock : Mutex.t;
  messages_cache : (corpus_key, Corpus.Trec.labeled array) Hashtbl.t;
  examples_cache :
    (corpus_key * string, Corpus.Dataset.example array) Hashtbl.t;
  checkpoint : Checkpoint.t option;
}

let cache_hit = Obs.counter "lab.corpus_cache.hit"
let cache_miss = Obs.counter "lab.corpus_cache.miss"
let checkpoint_hit = Obs.counter "checkpoint.hit"
let checkpoint_miss = Obs.counter "checkpoint.miss"

let create ?(seed = 42) ?(scale = 1.0) ?jobs ?checkpoint () =
  let jobs =
    match jobs with
    | Some j -> (
        match Spamlab_parallel.validate_jobs j with
        | Ok j -> j
        | Error msg -> invalid_arg msg)
    | None -> Spamlab_parallel.default_jobs ()
  in
  {
    seed;
    scale;
    jobs;
    config = Corpus.Generator.default_config ~seed ();
    tokenizer = Spamlab_tokenizer.Tokenizer.spambayes;
    root = Rng.create seed;
    usenet_full = Atomic.make None;
    lock = Mutex.create ();
    pool = None;
    cache_lock = Mutex.create ();
    messages_cache = Hashtbl.create 16;
    examples_cache = Hashtbl.create 16;
    checkpoint;
  }

let seed t = t.seed
let scale t = t.scale
let jobs t = t.jobs
let checkpoint t = t.checkpoint
let config t = t.config
let tokenizer t = t.tokenizer

let pool t =
  Mutex.protect t.lock (fun () ->
      match t.pool with
      | Some pool -> pool
      | None ->
          let pool = Spamlab_parallel.Pool.create ~jobs:t.jobs in
          t.pool <- Some pool;
          pool)

let shutdown t =
  let pool =
    Mutex.protect t.lock (fun () ->
        let p = t.pool in
        t.pool <- None;
        p)
  in
  match pool with
  | None -> ()
  | Some pool -> Spamlab_parallel.Pool.shutdown pool

let rng t name = Rng.split_named t.root name

let vocabulary t = t.config.Corpus.Generator.vocabulary

let aspell t ~size = Corpus.Dictionary.aspell ~size (vocabulary t)

(* Double-checked: the Atomic read is the lock-free fast path; the
   build is serialized so pool workers cannot both construct the
   ranking (the PR 4 race fix — plain mutable option fields have no
   publication guarantee under the OCaml 5 memory model). *)
let usenet_full t =
  match Atomic.get t.usenet_full with
  | Some words -> words
  | None ->
      Mutex.protect t.lock (fun () ->
          match Atomic.get t.usenet_full with
          | Some words -> words
          | None ->
              let words = Corpus.Usenet.ranked (vocabulary t) in
              Atomic.set t.usenet_full (Some words);
              words)

let usenet_top t ~size = Corpus.Usenet.top (usenet_full t) size

let optimal_words t =
  Corpus.Language_model.support t.config.Corpus.Generator.ham_model

(* Corpus memoization.  The key is (stream name, size, spam_fraction)
   — plus the tokenizer name for the example-level cache — and the
   generating rng is always a fresh [split_named] child of the lab
   root, so a cached corpus is exactly what recomputation would
   produce.  Lookups take [cache_lock]; the (expensive, internally
   parallel) compute runs outside it so concurrent misses on
   different keys do not serialize.  On a racing duplicate compute the
   first insert wins, keeping every caller on one physical corpus. *)
let cached lock tbl key compute =
  let existing = Mutex.protect lock (fun () -> Hashtbl.find_opt tbl key) in
  match existing with
  | Some v ->
      Obs.incr cache_hit;
      v
  | None ->
      Obs.incr cache_miss;
      let v = compute () in
      Mutex.protect lock (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some v' -> v'
          | None ->
              Hashtbl.add tbl key v;
              v)

let cached_messages t ~name ~size ~spam_fraction =
  cached t.cache_lock t.messages_cache { name; size; spam_fraction }
    (fun () ->
      Corpus.Trec.generate ~pool:(pool t) t.config (rng t name) ~size
        ~spam_fraction)

(* Callers shuffle and partition corpora in place: hand out a fresh
   array (sharing the immutable elements), never the cached one. *)
let corpus_messages t ~name ~size ~spam_fraction =
  Array.copy (cached_messages t ~name ~size ~spam_fraction)

let corpus t ~name ~size ~spam_fraction =
  let key =
    ( { name; size; spam_fraction },
      Spamlab_tokenizer.Tokenizer.name t.tokenizer )
  in
  Array.copy
    (cached t.cache_lock t.examples_cache key (fun () ->
         Corpus.Dataset.of_labeled ~pool:(pool t) t.tokenizer
           (cached_messages t ~name ~size ~spam_fraction)))

(* Checkpointed fan-out.  Without a checkpoint this is exactly
   [Pool.map_array] (after the optional [prepare] over the full input),
   so checkpoint-free runs stay byte-identical to pre-checkpoint
   behavior.  With one, each index is first looked up under
   "<stage>/<index>"; hits are decoded and skipped, misses go through
   [prepare] (which sees only the missed items — the hook exists so
   expensive shared setup can be scoped to what actually needs
   computing) and then through the pool, each completed cell recording
   its encoded result before the map returns.  A decode failure — a
   corrupt value, or an encoding change — counts as a miss and is
   recomputed, never trusted.

   Correctness rests on the same contract as the pool itself: [f] is
   pure per element with named-stream randomness, so computing only a
   subset yields the same values the full map would have produced. *)
let checkpointed_map (type a b) t ~stage ?dim ?prepare ~(encode : b -> string)
    ~(decode : a -> string -> b option) (f : a -> b) (arr : a array) : b array
    =
  let run_prepare items =
    match prepare with Some p -> p items | None -> ()
  in
  match t.checkpoint with
  | None ->
      run_prepare arr;
      Spamlab_parallel.Pool.map_array (pool t) f arr
  | Some ck ->
      let n = Array.length arr in
      (* The checkpoint header only pins (seed, scale); a sweep that
         varies another dimension (e.g. tenants --users) must fold it
         into the key or two sweep points would collide.  Absent [dim]
         the key is the historical "<stage>/<index>", so pre-existing
         checkpoint files stay readable. *)
      let key i =
        match dim with
        | None -> Printf.sprintf "%s/%d" stage i
        | Some d -> Printf.sprintf "%s/%s/%d" stage d i
      in
      let results = Array.make n None in
      let misses = ref [] in
      for i = n - 1 downto 0 do
        match Checkpoint.find ck (key i) with
        | Some v -> (
            match decode arr.(i) v with
            | Some r ->
                Obs.incr checkpoint_hit;
                results.(i) <- Some r
            | None ->
                Obs.incr checkpoint_miss;
                misses := i :: !misses)
        | None ->
            Obs.incr checkpoint_miss;
            misses := i :: !misses
      done;
      let miss_idx = Array.of_list !misses in
      if Array.length miss_idx > 0 then begin
        run_prepare (Array.map (fun i -> arr.(i)) miss_idx);
        let computed =
          Spamlab_parallel.Pool.map_array (pool t)
            (fun i ->
              let r = f arr.(i) in
              Checkpoint.record ck ~key:(key i) ~value:(encode r);
              r)
            miss_idx
        in
        Array.iteri (fun j i -> results.(i) <- Some computed.(j)) miss_idx
      end;
      Array.map (function Some r -> r | None -> assert false) results
