module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Options = Spamlab_spambayes.Options
module Attack = Spamlab_core.Dictionary_attack
module Dynamic_threshold = Spamlab_core.Dynamic_threshold

type point = {
  fraction : float;
  ham_as_spam : float;
  ham_misclassified : float;
  spam_as_unsure : float;
  theta0 : float;
  theta1 : float;
}

type series = { defense : string; points : point list }

type cell = {
  mutable confusion : Confusion.t;
  mutable theta0_sum : float;
  mutable theta1_sum : float;
  mutable folds : int;
}

(* Derive dynamic thresholds for one poisoned fold: train on half the
   clean examples plus half the attack copies, score the other half
   (the attack email scored once, weighted). *)
let derive_thresholds quantile ~train ~payload ~count rng =
  Spamlab_obs.Obs.span "threshold.derive" @@ fun () ->
  let half_a, half_b = Dataset.split rng 0.5 train in
  let filter = Filter.create () in
  Dataset.train_filter filter half_a;
  Filter.train_tokens_many filter Label.Spam payload (count / 2);
  let base_scores =
    Array.map
      (fun (e : Dataset.example) ->
        ((Dataset.classify filter e).Classify.indicator, e.label, 1))
      half_b
  in
  let attack_weight = count - (count / 2) in
  let scores =
    if attack_weight = 0 then base_scores
    else
      let attack_score =
        (Filter.classify_tokens filter payload).Classify.indicator
      in
      Array.append base_scores
        [| (attack_score, Label.Spam, attack_weight) |]
  in
  Dynamic_threshold.thresholds_of_scores
    ~config:{ Dynamic_threshold.quantile } scores

let run lab (params : Params.threshold) =
  let tokenizer = Lab.tokenizer lab in
  let examples =
    Lab.corpus lab ~name:"threshold-defense" ~size:params.train_size
      ~spam_fraction:params.spam_prevalence
  in
  let attack =
    Attack.make ~name:"usenet"
      ~words:
        (Lab.usenet_top lab
           ~size:(Params.dictionary ~scale:(Lab.scale lab) ()).Params.usenet_size)
  in
  let payload = Attack.payload tokenizer attack in
  let folds = Dataset.kfold ~k:params.folds examples in
  (* Corpus and payload are fully interned; freeze before the fan-out
     so in-task id lookups are lock-free. *)
  Spamlab_spambayes.Intern.freeze ();
  let defenses =
    "no defense"
    :: List.map (fun q -> Printf.sprintf "threshold-.%02d" (int_of_float (q *. 100.))) params.quantiles
  in
  (* Each fold runs as one pool task with its own named randomness
     stream (the training-set halving inside [derive_thresholds]), so
     results do not depend on which domain runs which fold.  A task
     returns, per fraction and defense, the confusion matrix and derived
     thresholds; folds are merged in index order after the join. *)
  let fold_results =
    Spamlab_parallel.Pool.map_array (Lab.pool lab)
      (fun (fold_index, (train, test)) ->
        Spamlab_obs.Obs.span "threshold.fold" @@ fun () ->
        let rng =
          Lab.rng lab (Printf.sprintf "threshold-defense/fold-%d" fold_index)
        in
        let base = Poison.base_filter tokenizer train in
        let counts =
          List.map
            (fun fraction ->
              Poison.attack_count ~train_size:(Array.length train) ~fraction)
            params.attack_fractions
        in
        let scores_by_fraction = Poison.sweep base ~payload ~counts test in
        List.map2
          (fun count scores ->
            let no_defense =
              ( Poison.confusion_of_scores Options.default scores,
                Options.default.Options.ham_cutoff,
                Options.default.Options.spam_cutoff )
            in
            let dynamic =
              List.map
                (fun quantile ->
                  let theta0, theta1 =
                    derive_thresholds quantile ~train ~payload ~count rng
                  in
                  let options =
                    Options.with_cutoffs Options.default ~ham:theta0
                      ~spam:theta1
                  in
                  ( Poison.confusion_of_scores options scores,
                    theta0, theta1 ))
                params.quantiles
            in
            no_defense :: dynamic)
          counts scores_by_fraction)
      (Array.mapi (fun i fold -> (i, fold)) folds)
  in
  let cells = Hashtbl.create 32 in
  let cell defense fraction =
    match Hashtbl.find_opt cells (defense, fraction) with
    | Some c -> c
    | None ->
        let c =
          { confusion = Confusion.create (); theta0_sum = 0.0;
            theta1_sum = 0.0; folds = 0 }
        in
        Hashtbl.replace cells (defense, fraction) c;
        c
  in
  Array.iter
    (fun per_fraction ->
      List.iter2
        (fun fraction per_defense ->
          List.iter2
            (fun defense (confusion, theta0, theta1) ->
              let c = cell defense fraction in
              c.confusion <- Confusion.merge c.confusion confusion;
              c.theta0_sum <- c.theta0_sum +. theta0;
              c.theta1_sum <- c.theta1_sum +. theta1;
              c.folds <- c.folds + 1)
            defenses per_defense)
        params.attack_fractions per_fraction)
    fold_results;
  List.map
    (fun defense ->
      let points =
        List.map
          (fun fraction ->
            let c = cell defense fraction in
            let n = float_of_int (max 1 c.folds) in
            {
              fraction;
              ham_as_spam = 100.0 *. Confusion.ham_as_spam_rate c.confusion;
              ham_misclassified =
                100.0 *. Confusion.ham_misclassified_rate c.confusion;
              spam_as_unsure =
                100.0 *. Confusion.spam_as_unsure_rate c.confusion;
              theta0 = c.theta0_sum /. n;
              theta1 = c.theta1_sum /. n;
            })
          params.attack_fractions
      in
      { defense; points })
    defenses

let render series =
  let rows =
    List.concat_map
      (fun { defense; points } ->
        List.map
          (fun p ->
            [
              defense;
              Printf.sprintf "%.1f" (100.0 *. p.fraction);
              Table.f2 p.ham_as_spam;
              Table.f2 p.ham_misclassified;
              Table.f2 p.spam_as_unsure;
              Printf.sprintf "%.3f" p.theta0;
              Printf.sprintf "%.3f" p.theta1;
            ])
          points)
      series
  in
  let table =
    Table.render
      ~header:
        [
          "defense"; "attack %"; "ham->spam %"; "ham->spam|unsure %";
          "spam->unsure %"; "theta0"; "theta1";
        ]
      ~rows
  in
  let chart =
    Plot.line_chart ~y_max:100.0 ~x_label:"percent control of training set"
      ~y_label:"percent of test ham misclassified (spam or unsure)"
      (List.map
         (fun { defense; points } ->
           ( defense,
             List.map
               (fun p -> (100.0 *. p.fraction, p.ham_misclassified))
               points ))
         series)
  in
  "Figure 5: dynamic threshold defense vs. Usenet dictionary attack\n\n"
  ^ table ^ "\n" ^ chart
