(** Shared plumbing for poisoning experiments. *)

val attack_count : train_size:int -> fraction:float -> int
(** Number of attack emails that makes up [fraction] of the {e final}
    training set: ⌈n·f/(1−f)⌋.  At f = 0.01 and n = 10,000 this is 101,
    matching the paper's "101 attack emails (1% of 10,000)".
    @raise Invalid_argument unless 0 ≤ f < 1, or when the count would
    overflow [int] (fractions within float rounding of 1). *)

val base_filter :
  Spamlab_tokenizer.Tokenizer.t ->
  Spamlab_corpus.Dataset.example array ->
  Spamlab_spambayes.Filter.t
(** A fresh default-options filter trained on the examples. *)

val poisoned :
  Spamlab_spambayes.Filter.t -> payload:string array -> count:int ->
  Spamlab_spambayes.Filter.t
(** Copy the filter and train [count] identical spam messages with the
    given distinct-token payload. *)

val score_examples :
  Spamlab_spambayes.Filter.t ->
  Spamlab_corpus.Dataset.example array ->
  (float * Spamlab_spambayes.Label.gold) array
(** Indicator scores with gold labels — verdicts can then be derived
    under any thresholds without rescoring. *)

val sweep :
  Spamlab_spambayes.Filter.t ->
  payload:string array ->
  counts:int list ->
  Spamlab_corpus.Dataset.example array ->
  (float * Spamlab_spambayes.Label.gold) array list
(** [sweep base ~payload ~counts test] is
    [List.map (fun c -> score_examples (poisoned base ~payload ~count:c) test) counts]
    — bit-identically — without copying or retraining anything: each
    test token's base counts and payload membership are looked up once,
    and every grid point is then scored arithmetically from those
    cached counts (training the payload [k] times only shifts payload
    spam counts and the spam total by [k]). *)

val confusion_of_scores :
  Spamlab_spambayes.Options.t ->
  (float * Spamlab_spambayes.Label.gold) array ->
  Confusion.t
