(** Shared experimental setup: one laboratory instance fixes the seed,
    the generative corpus (vocabulary, language models, correspondent
    pools) and the tokenizer, and lazily derives the attacker word
    sources from the same vocabulary — so every experiment in a run
    attacks the same simulated world. *)

type t

val create : ?seed:int -> ?scale:float -> ?jobs:int -> unit -> t
(** Default seed 42, scale 1.0 (paper sizes — see {!Params}), jobs
    {!Spamlab_parallel.default_jobs} (the [SPAMLAB_JOBS] environment
    variable, else the machine's recommended domain count).  Results
    are identical at every [jobs] value. *)

val seed : t -> int
val scale : t -> float
val jobs : t -> int
val config : t -> Spamlab_corpus.Generator.config
val tokenizer : t -> Spamlab_tokenizer.Tokenizer.t

val pool : t -> Spamlab_parallel.Pool.t
(** The lab's domain pool, created on first use. *)

val shutdown : t -> unit
(** Join the pool's worker domains (no-op if none were started).  The
    pool is recreated on demand afterwards. *)

val rng : t -> string -> Spamlab_stats.Rng.t
(** Named independent stream (see {!Spamlab_stats.Rng.split_named}). *)

val aspell : t -> size:int -> string array
val usenet_top : t -> size:int -> string array
val optimal_words : t -> string array
(** Support of the ham language model — the §3.4 optimal word source. *)

val corpus :
  t -> name:string -> size:int -> spam_fraction:float ->
  Spamlab_corpus.Dataset.example array
(** The labeled, tokenized inbox of the stream [name]: generated from
    the rng child [rng t name] and memoized on
    (name, size, spam_fraction, tokenizer), so two requests for the
    same world — within one experiment or across a [bench all] run —
    tokenize it once.  The returned array is a fresh copy (callers
    shuffle in place) sharing the immutable examples.  Cache traffic
    is visible as the [lab.corpus_cache.hit]/[.miss] counters.  Safe
    to call from pool workers; generation and tokenization fan over
    the lab pool, with identical output at every jobs count. *)

val corpus_messages :
  t -> name:string -> size:int -> spam_fraction:float ->
  Spamlab_corpus.Trec.labeled array
(** Untokenized variant of {!corpus}; shares its message-level cache
    entry (so [corpus] then [corpus_messages] of one world generates
    once). *)
