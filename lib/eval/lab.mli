(** Shared experimental setup: one laboratory instance fixes the seed,
    the generative corpus (vocabulary, language models, correspondent
    pools) and the tokenizer, and lazily derives the attacker word
    sources from the same vocabulary — so every experiment in a run
    attacks the same simulated world. *)

type t

val create :
  ?seed:int -> ?scale:float -> ?jobs:int -> ?checkpoint:Checkpoint.t ->
  unit -> t
(** Default seed 42, scale 1.0 (paper sizes — see {!Params}), jobs
    {!Spamlab_parallel.default_jobs} (the [SPAMLAB_JOBS] environment
    variable, else the machine's recommended domain count).  Results
    are identical at every [jobs] value.  [checkpoint] (default none)
    makes {!checkpointed_map} fan-outs resumable; a lab without one
    behaves exactly as before. *)

val seed : t -> int
val scale : t -> float
val jobs : t -> int

val checkpoint : t -> Checkpoint.t option
val config : t -> Spamlab_corpus.Generator.config
val tokenizer : t -> Spamlab_tokenizer.Tokenizer.t

val pool : t -> Spamlab_parallel.Pool.t
(** The lab's domain pool, created on first use. *)

val shutdown : t -> unit
(** Join the pool's worker domains (no-op if none were started).  The
    pool is recreated on demand afterwards. *)

val rng : t -> string -> Spamlab_stats.Rng.t
(** Named independent stream (see {!Spamlab_stats.Rng.split_named}). *)

val aspell : t -> size:int -> string array
val usenet_top : t -> size:int -> string array
val optimal_words : t -> string array
(** Support of the ham language model — the §3.4 optimal word source. *)

val corpus :
  t -> name:string -> size:int -> spam_fraction:float ->
  Spamlab_corpus.Dataset.example array
(** The labeled, tokenized inbox of the stream [name]: generated from
    the rng child [rng t name] and memoized on
    (name, size, spam_fraction, tokenizer), so two requests for the
    same world — within one experiment or across a [bench all] run —
    tokenize it once.  The returned array is a fresh copy (callers
    shuffle in place) sharing the immutable examples.  Cache traffic
    is visible as the [lab.corpus_cache.hit]/[.miss] counters.  Safe
    to call from pool workers; generation and tokenization fan over
    the lab pool, with identical output at every jobs count. *)

val corpus_messages :
  t -> name:string -> size:int -> spam_fraction:float ->
  Spamlab_corpus.Trec.labeled array
(** Untokenized variant of {!corpus}; shares its message-level cache
    entry (so [corpus] then [corpus_messages] of one world generates
    once). *)

val checkpointed_map :
  t ->
  stage:string ->
  ?dim:string ->
  ?prepare:('a array -> unit) ->
  encode:('b -> string) ->
  decode:('a -> string -> 'b option) ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** {!Spamlab_parallel.Pool.map_array} over the lab pool, made
    resumable when the lab has a checkpoint.  Each element's result is
    recorded under key ["<stage>/<index>"] — ["<stage>/<dim>/<index>"]
    when [dim] is given, for sweeps that vary a dimension beyond the
    (seed, scale) pinned in the checkpoint header (two sweep points
    would otherwise collide; omitting [dim] keeps old checkpoint files
    readable) — as [encode result]; on a later run, recorded cells are
    restored via [decode item value] (bumping [checkpoint.hit]) and
    only the rest are computed ([checkpoint.miss]).  [decode] returning [None] — corrupt or
    stale value — falls back to recomputation.  [prepare] runs once
    before any computation with exactly the items that will be
    computed (the full array when there is no checkpoint): hang
    expensive shared setup there so a fully-restored sweep skips it.
    Requires [f] pure per element with named-stream randomness, like
    every pool map; given that, a resumed run returns byte-identical
    results to an uninterrupted one. *)
