module Dataset = Spamlab_corpus.Dataset
module Filter = Spamlab_spambayes.Filter
module Token_db = Spamlab_spambayes.Token_db
module Classify = Spamlab_spambayes.Classify
module Options = Spamlab_spambayes.Options
module Label = Spamlab_spambayes.Label
module Attack = Spamlab_core.Dictionary_attack
module Rng = Spamlab_stats.Rng
module Store = Spamlab_store.Store

type config = {
  users : int list;
  communities : int;
  train_per_user : int;
  eval_per_user : int;
  poison_fraction : float;
  attack_count : int;
  store_dir : string option;
  shards : int;
  cache : int;
  compact_ratio : float;
}

let default_config =
  {
    users = [ 1000 ];
    communities = 8;
    train_per_user = 3;
    eval_per_user = 2;
    poison_fraction = 0.1;
    attack_count = 4;
    store_dir = None;
    shards = Store.default_config.shards;
    cache = Store.default_config.cache;
    compact_ratio = Store.default_config.compact_ratio;
  }

(* Aggregated per-user outcomes of one chunk of the user space: ham
   verdict tallies for clean users, for poisoned users before the
   defense, and for poisoned users after it. *)
type agg = {
  mutable a_users : int;
  mutable a_poisoned : int;
  mutable clean_ham : int;
  mutable clean_unsure : int;
  mutable clean_spam : int;
  mutable pre_ham : int;
  mutable pre_unsure : int;
  mutable pre_spam : int;
  mutable post_ham : int;
  mutable post_unsure : int;
  mutable post_spam : int;
}

let agg () =
  {
    a_users = 0;
    a_poisoned = 0;
    clean_ham = 0;
    clean_unsure = 0;
    clean_spam = 0;
    pre_ham = 0;
    pre_unsure = 0;
    pre_spam = 0;
    post_ham = 0;
    post_unsure = 0;
    post_spam = 0;
  }

let agg_add into a =
  into.a_users <- into.a_users + a.a_users;
  into.a_poisoned <- into.a_poisoned + a.a_poisoned;
  into.clean_ham <- into.clean_ham + a.clean_ham;
  into.clean_unsure <- into.clean_unsure + a.clean_unsure;
  into.clean_spam <- into.clean_spam + a.clean_spam;
  into.pre_ham <- into.pre_ham + a.pre_ham;
  into.pre_unsure <- into.pre_unsure + a.pre_unsure;
  into.pre_spam <- into.pre_spam + a.pre_spam;
  into.post_ham <- into.post_ham + a.post_ham;
  into.post_unsure <- into.post_unsure + a.post_unsure;
  into.post_spam <- into.post_spam + a.post_spam

let agg_encode a =
  String.concat ","
    (List.map string_of_int
       [
         a.a_users; a.a_poisoned; a.clean_ham; a.clean_unsure; a.clean_spam;
         a.pre_ham; a.pre_unsure; a.pre_spam; a.post_ham; a.post_unsure;
         a.post_spam;
       ])

let agg_decode s =
  match List.map int_of_string_opt (String.split_on_char ',' s) with
  | [
   Some a_users; Some a_poisoned; Some clean_ham; Some clean_unsure;
   Some clean_spam; Some pre_ham; Some pre_unsure; Some pre_spam;
   Some post_ham; Some post_unsure; Some post_spam;
  ] ->
      Some
        {
          a_users; a_poisoned; clean_ham; clean_unsure; clean_spam; pre_ham;
          pre_unsure; pre_spam; post_ham; post_unsure; post_spam;
        }
  | _ -> None

let chunk_size = 1024

(* Corpus sizes scale with the lab like everything else, but stay
   independent of the user count: tenants share community pools, they
   do not each own a corpus. *)
let pool_size lab base = max 64 (int_of_float (float_of_int base *. Lab.scale lab))

let user_name i = Printf.sprintf "user-%06d" i

type world = {
  options : Options.t;
  payload : string array;
  (* per community: training pool and all-ham eval pool *)
  train_pools : Dataset.example array array;
  eval_pools : Dataset.example array array;
}

let build_world lab cfg =
  let tokenizer = Lab.tokenizer lab in
  (* Correlated but distinct: every community corpus comes from the
     same generative substrate (vocabulary, language models), under its
     own rng stream and spam prevalence. *)
  let train_pools =
    Array.init cfg.communities (fun c ->
        let spam_fraction =
          0.3
          +. (0.4 *. float_of_int c /. float_of_int (max 1 (cfg.communities - 1)))
        in
        Lab.corpus lab
          ~name:(Printf.sprintf "tenants/community-%d" c)
          ~size:(pool_size lab 256) ~spam_fraction)
  in
  let eval_pools =
    Array.init cfg.communities (fun c ->
        Lab.corpus lab
          ~name:(Printf.sprintf "tenants/eval-%d" c)
          ~size:(pool_size lab 96) ~spam_fraction:0.0)
  in
  let payload =
    Attack.payload tokenizer
      (Attack.make ~name:"aspell" ~words:(Lab.aspell lab ~size:(pool_size lab 1000)))
  in
  { options = Options.default; payload; train_pools; eval_pools }

(* The global prior every tenant starts from: the shared filter trained
   on its own stream — the state a provider would ship to new
   mailboxes. *)
let build_prior lab =
  let examples =
    Lab.corpus lab ~name:"tenants/prior" ~size:(pool_size lab 256)
      ~spam_fraction:0.5
  in
  let filter = Poison.base_filter (Lab.tokenizer lab) examples in
  Token_db.copy (Filter.db filter)

let open_store cfg ~options ~nusers ~prior =
  let backend =
    match cfg.store_dir with
    | None -> `Memory
    | Some dir ->
        (* One subdirectory per sweep point: sweep points are distinct
           stores, not reopenings of one. *)
        `Sharded (Filename.concat dir (Printf.sprintf "users-%d" nusers))
  in
  Store.open_store ~options ~prior
    {
      Store.backend;
      shards = cfg.shards;
      cache = cfg.cache;
      compact_ratio = cfg.compact_ratio;
    }

(* One user's life: sample a community and training slice, train them
   (poisoned users additionally train the dictionary payload as spam),
   classify the community's held-out ham, then for poisoned users
   untrain the attack (the defense) and classify again. *)
let run_user cfg world store users_rng i a =
  let rng = Rng.split_indexed users_rng i in
  let c = Rng.int rng (Array.length world.train_pools) in
  let train_pool = world.train_pools.(c) in
  let eval_pool = world.eval_pools.(c) in
  let user = user_name i in
  for _ = 1 to cfg.train_per_user do
    let ex = train_pool.(Rng.int rng (Array.length train_pool)) in
    Store.train store ~user ex.Dataset.label ex.Dataset.tokens
  done;
  let poisoned = Rng.bernoulli rng cfg.poison_fraction in
  if poisoned then
    Store.train_many store ~user Label.Spam world.payload cfg.attack_count;
  let eval_idx =
    Array.init cfg.eval_per_user (fun _ -> Rng.int rng (Array.length eval_pool))
  in
  (* Scores through the store's shared prior cache + overlay dirty set
     — bit-identical to [Classify.score_ids world.options db]. *)
  let tally (ham, unsure, spam) =
    Store.with_user_engine store user (fun engine ->
        Array.iter
          (fun j ->
            let ex = eval_pool.(j) in
            let r = Classify.score_engine engine ex.Dataset.ids in
            match r.Classify.verdict with
            | Label.Ham_v -> incr ham
            | Label.Unsure_v -> incr unsure
            | Label.Spam_v -> incr spam)
          eval_idx)
  in
  a.a_users <- a.a_users + 1;
  if poisoned then begin
    a.a_poisoned <- a.a_poisoned + 1;
    let ham = ref 0 and unsure = ref 0 and spam = ref 0 in
    tally (ham, unsure, spam);
    a.pre_ham <- a.pre_ham + !ham;
    a.pre_unsure <- a.pre_unsure + !unsure;
    a.pre_spam <- a.pre_spam + !spam;
    for _ = 1 to cfg.attack_count do
      Store.untrain store ~user Label.Spam world.payload
    done;
    let ham = ref 0 and unsure = ref 0 and spam = ref 0 in
    tally (ham, unsure, spam);
    a.post_ham <- a.post_ham + !ham;
    a.post_unsure <- a.post_unsure + !unsure;
    a.post_spam <- a.post_spam + !spam
  end
  else begin
    let ham = ref 0 and unsure = ref 0 and spam = ref 0 in
    tally (ham, unsure, spam);
    a.clean_ham <- a.clean_ham + !ham;
    a.clean_unsure <- a.clean_unsure + !unsure;
    a.clean_spam <- a.clean_spam + !spam
  end

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let render_point nusers (a : agg) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "users=%d poisoned=%d (%.1f%%)\n" a.a_users a.a_poisoned
       (pct a.a_poisoned a.a_users));
  let line tag ham unsure spam =
    let total = ham + unsure + spam in
    Buffer.add_string b
      (Printf.sprintf
         "  %-28s ham=%d unsure=%d spam=%d  misclassified=%.2f%%\n" tag ham
         unsure spam
         (pct (unsure + spam) total))
  in
  line "clean ham" a.clean_ham a.clean_unsure a.clean_spam;
  line "poisoned ham (attacked)" a.pre_ham a.pre_unsure a.pre_spam;
  line "poisoned ham (defended)" a.post_ham a.post_unsure a.post_spam;
  ignore nusers;
  Buffer.contents b

(* One sweep point: open a fresh store for [nusers], run every user
   chunk over the lab pool (resumable under a checkpoint, keyed by the
   users dimension so sweep points cannot collide), aggregate in chunk
   order. *)
let run_point lab cfg world ~nusers =
  let prior = build_prior lab in
  match open_store cfg ~options:world.options ~nusers ~prior with
  | Error e -> Error e
  | Ok store ->
      Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
      let users_rng = Lab.rng lab "tenants/users" in
      let nchunks = (nusers + chunk_size - 1) / chunk_size in
      let chunks =
        Array.init nchunks (fun k ->
            (k * chunk_size, min chunk_size (nusers - (k * chunk_size))))
      in
      let results =
        Lab.checkpointed_map lab ~stage:"tenants/chunk"
          ~dim:(Printf.sprintf "users=%d" nusers)
          ~encode:agg_encode
          ~decode:(fun _ s -> agg_decode s)
          (fun (start, len) ->
            let a = agg () in
            for i = start to start + len - 1 do
              run_user cfg world store users_rng i a
            done;
            a)
          chunks
      in
      let total = agg () in
      Array.iter (agg_add total) results;
      Store.compact_all store;
      Ok (total, Store.stats store)

let run lab cfg =
  let world = build_world lab cfg in
  Spamlab_spambayes.Intern.freeze ();
  let b = Buffer.create 1024 in
  let detail = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "Tenants: per-user Bayes state under a %.0f%%-poisoned population\n\
        communities=%d train/user=%d eval/user=%d attack=%d emails\n\n"
       (100.0 *. cfg.poison_fraction)
       cfg.communities cfg.train_per_user cfg.eval_per_user cfg.attack_count);
  let rec go = function
    | [] -> Ok (Buffer.contents b, Buffer.contents detail)
    | nusers :: rest -> (
        match run_point lab cfg world ~nusers with
        | Error e -> Error e
        | Ok (total, stats) ->
            Buffer.add_string b (render_point nusers total);
            (* Store traffic goes to the detail (stderr) channel: a
               checkpoint-resumed run restores chunk outcomes without
               re-training, so these counters are resume-variant even
               though classification outcomes are not. *)
            Buffer.add_string detail
              (Printf.sprintf
                 "users=%d store: journal_ops=%d journal_bytes=%d \
                  compactions=%d evictions=%d\n"
                 nusers stats.Store.journal_ops stats.Store.journal_bytes
                 stats.Store.compactions stats.Store.evictions);
            go rest)
  in
  go cfg.users
