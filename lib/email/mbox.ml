let separator = "From spamlab@localhost Thu Jan  1 00:00:00 1970"

let is_separator line =
  String.length line >= 5 && String.sub line 0 5 = "From "

(* A line needing quoting is any number of '>' followed by "From ". *)
let needs_quoting line =
  let n = String.length line in
  let rec skip i = if i < n && line.[i] = '>' then skip (i + 1) else i in
  let i = skip 0 in
  n - i >= 5 && String.sub line i 5 = "From "

let quote_body body =
  String.split_on_char '\n' body
  |> List.map (fun line -> if needs_quoting line then ">" ^ line else line)
  |> String.concat "\n"

let unquote_body body =
  String.split_on_char '\n' body
  |> List.map (fun line ->
         if String.length line > 0 && line.[0] = '>' && needs_quoting line
         then String.sub line 1 (String.length line - 1)
         else line)
  |> String.concat "\n"

let print messages =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun msg ->
      Buffer.add_string buffer separator;
      Buffer.add_char buffer '\n';
      let quoted = Message.with_body msg (quote_body (Message.body msg)) in
      Buffer.add_string buffer (Rfc2822.print quoted);
      Buffer.add_char buffer '\n')
    messages;
  Buffer.contents buffer

(* Group lines into chunks delimited by separator lines. *)
let chunks_of text =
  let lines = String.split_on_char '\n' text in
  let rec group current chunks = function
    | [] ->
        (* A text ending in '\n' splits into a final "" artifact.  When
           the last real line was a separator, that artifact is the sole
           accumulated element — dropping it keeps "separator at EOF"
           consistent with the mid-file case (two adjacent separators
           yield no empty message) and with the offset-based scanner in
           [Ingest.iter_raw_messages], which never fabricates a chunk
           after a final separator. *)
        let chunks =
          match current with
          | [] | [ "" ] -> chunks
          | _ -> List.rev current :: chunks
        in
        List.rev chunks
    | line :: rest ->
        if is_separator line then
          let chunks =
            if current = [] then chunks else List.rev current :: chunks
          in
          group [] chunks rest
        else group (line :: current) chunks rest
  in
  group [] [] lines

let parse_chunk chunk =
  (* Drop the trailing blank line print added after each body. *)
  let chunk =
    match List.rev chunk with "" :: rest -> List.rev rest | _ -> chunk
  in
  Result.map
    (fun msg -> Message.with_body msg (unquote_body (Message.body msg)))
    (Rfc2822.parse (String.concat "\n" chunk))

let parse text =
  if String.trim text = "" then Ok []
  else
    match chunks_of text with
    | [] -> Error "mbox: no message separator found"
    | chunks ->
        let rec all acc = function
          | [] -> Ok (List.rev acc)
          | chunk :: rest -> (
              match parse_chunk chunk with
              | Ok m -> all (m :: acc) rest
              | Error e -> Error e)
        in
        all [] chunks

let parse_lenient text =
  if String.trim text = "" then ([], 0)
  else
    List.fold_left
      (fun (acc, dropped) chunk ->
        match parse_chunk chunk with
        | Ok m -> (m :: acc, dropped)
        | Error _ -> (acc, dropped + 1))
      ([], 0) (chunks_of text)
    |> fun (acc, dropped) -> (List.rev acc, dropped)

let write_file path messages =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print messages))

let with_contents path f =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> f (In_channel.input_all ic))

let read_file path = with_contents path parse
let read_file_lenient path = with_contents path (fun s -> Ok (parse_lenient s))
