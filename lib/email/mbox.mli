(** mboxrd-style mailbox files: messages separated by ["From "] lines,
    with [>From]-quoting of body lines that would otherwise look like
    separators.  Used to persist generated corpora and to feed the CLI. *)

val print : Message.t list -> string
(** Serialize a mailbox.  Each message gets a synthetic
    ["From spamlab@localhost"] separator line; body lines matching
    [>*From ] are quoted with one more ['>']. *)

val parse : string -> (Message.t list, string) result
(** Parse a mailbox, reversing the quoting.  An empty string is the
    empty mailbox. *)

val write_file : string -> Message.t list -> unit
(** @raise Sys_error on I/O failure. *)

val read_file : string -> (Message.t list, string) result
(** A missing or unreadable file is [Error], not [Sys_error]. *)

val parse_lenient : string -> Message.t list * int
(** Like {!parse}, but a chunk that fails RFC 2822 parsing is dropped
    instead of failing the whole mailbox.  Returns the surviving
    messages and the number of dropped (quarantined) chunks. *)

val read_file_lenient : string -> (Message.t list * int, string) result
(** {!parse_lenient} over a file's contents; [Error] only on I/O
    failure. *)
