(** Deterministic, splittable pseudo-random number generator.

    The whole laboratory must be reproducible from a single integer seed:
    corpora, attacks and experiment resampling all draw from explicitly
    threaded generator states, never from global state.  The implementation
    is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which is fast, has a
    64-bit state, passes BigCrush, and supports cheap splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay exactly the
    stream [t] would have produced from this point. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Use this
    to hand reproducible sub-streams to sub-experiments. *)

val split_named : t -> string -> t
(** [split_named t name] derives an independent generator keyed by [name];
    unlike {!split} it does not depend on how many times the parent was
    used before, only on the parent's seed and [name].  This keeps
    experiment components reproducible even when siblings change how much
    randomness they consume. *)

val split_indexed : t -> int -> t
(** [split_indexed t i] derives an independent generator keyed by the
    parent's {e current} position and the index [i], without advancing
    the parent.  Splitting every index of an array up front gives each
    element an independent stream that is a pure function of the
    parent's state — the contract that lets element construction fan
    over domains with results identical at every jobs count. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float
(** Uniform on [0,1) with 53 bits of precision. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [k] distinct elements
    uniformly.  @raise Invalid_argument if [k] exceeds the array length
    or is negative. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val seed_of : t -> int
(** The seed the generator was created from (for logging). *)
