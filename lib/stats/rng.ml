type t = { mutable state : int64; seed : int }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mixing (variant 13 of Stafford's mixers). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed; seed }

let copy t = { t with state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s; seed = t.seed }

(* FNV-1a over the name, folded into a fresh state derived from the seed
   only.  Independent of the parent's consumption position. *)
let split_named t name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  let base = mix64 (Int64.add (Int64.of_int t.seed) golden_gamma) in
  { state = mix64 (Int64.logxor base !h); seed = t.seed }

(* Child keyed by the parent's current position and an index, without
   advancing the parent.  Used to pre-split one independent stream per
   array element (corpus messages) so element construction can fan over
   domains while remaining a pure function of the parent's state. *)
let split_indexed t i =
  let base = mix64 (Int64.add t.state golden_gamma) in
  let ih = mix64 (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  { state = mix64 (Int64.logxor base ih); seed = t.seed }

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for any
     bound below 2^24, and all laboratory bounds are small. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then
    invalid_arg "Rng.sample_without_replacement: k out of range";
  (* Partial Fisher-Yates on a copy of the index space. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let seed_of t = t.seed
