(* Token scores are clamped into [epsilon, 1 - epsilon] before taking
   logarithms: a probability of exactly 0 would make the statistic
   infinite and the chi-square tail meaningless. *)
let epsilon = 1e-12

let clamp p = Float.max epsilon (Float.min (1.0 -. epsilon) p)

let statistic ps =
  if ps = [] then invalid_arg "Fisher.statistic: empty p-value list";
  List.fold_left
    (fun acc p ->
      if p < 0.0 || p > 1.0 then
        invalid_arg "Fisher.statistic: p-value outside [0,1]";
      acc -. (2.0 *. log (clamp p)))
    0.0 ps

let combine ps =
  let n = List.length ps in
  Special.chi2_sf ~df:(2 * n) (statistic ps)

let spambayes_h fs = if fs = [] then 1.0 else combine fs

let spambayes_s fs =
  if fs = [] then 1.0 else combine (List.map (fun f -> 1.0 -. f) fs)

let indicator fs =
  let h = spambayes_h fs in
  let s = spambayes_s fs in
  (1.0 +. h -. s) /. 2.0

(* Array-prefix form of [indicator], for the scoring hot path: the same
   float operations in the same order as the list pipeline — validate,
   clamp, log, fold left, one chi-square tail per direction — without
   materializing the score list, its 1−f complement, or the fold
   closures.  Bit-identical to [indicator] on the same scores. *)
let combine_sub fs n ~flip =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let f = Array.unsafe_get fs i in
    let p = if flip then 1.0 -. f else f in
    if p < 0.0 || p > 1.0 then
      invalid_arg "Fisher.statistic: p-value outside [0,1]";
    acc := !acc -. (2.0 *. log (clamp p))
  done;
  Special.chi2_sf ~df:(2 * n) !acc

let indicator_sub fs n =
  if n = 0 then 0.5
  else
    let h = combine_sub fs n ~flip:false in
    let s = combine_sub fs n ~flip:true in
    (1.0 +. h -. s) /. 2.0
