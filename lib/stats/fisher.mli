(** Fisher's method for combining independent significance tests
    (Fisher 1948), the statistical core of SpamBayes' message score.

    Given n p-values p_i from independent tests of the same null
    hypothesis, the statistic −2 Σ ln p_i is chi-square distributed with
    2n degrees of freedom under the null.  SpamBayes applies it twice per
    message — once to the token scores f(w) and once to their complements
    1 − f(w) — and combines the two tails (paper Eq. 3–4). *)

val statistic : float list -> float
(** [statistic ps] = −2 Σ ln p_i.  Probabilities are clamped away from 0
    to keep the statistic finite (a token score of exactly 0 or 1 carries
    unbounded evidence; SpamBayes never produces one, but attack code
    paths may).  @raise Invalid_argument on an empty list or a value
    outside [0,1]. *)

val combine : float list -> float
(** [combine ps] is the combined p-value: the chi-square survival
    function of {!statistic} at 2n degrees of freedom.  Small values
    reject the null. *)

val spambayes_h : float list -> float
(** [spambayes_h fs] is the paper's H(E) (Eq. 4) applied to token scores
    [fs]: 1 − χ²_{2n}(−2 Σ ln f(w)) — i.e. the survival function of the
    statistic.  Returns 1.0 on an empty list (no evidence). *)

val spambayes_s : float list -> float
(** The paper's S(E): {!spambayes_h} with every f(w) replaced by
    1 − f(w). *)

val indicator : float list -> float
(** [indicator fs] is the message score I(E) = (1 + H − S)/2 ∈ [0,1]
    (Eq. 3).  0 is maximally hammy, 1 maximally spammy, 0.5 neutral. *)

val indicator_sub : float array -> int -> float
(** [indicator_sub fs n] = [indicator] of [fs.(0 .. n-1)] — same float
    operations in the same order, bit-identical results — without
    materializing any list.  The scoring hot path
    ({!Spamlab_spambayes.Classify}) feeds it the selected clue scores
    straight from its scratch buffer.  0.5 when [n = 0]. *)
