module Filter = Spamlab_spambayes.Filter
module Options = Spamlab_spambayes.Options
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Ingest = Spamlab_spambayes.Ingest
module Intern = Spamlab_spambayes.Intern
module Token_db = Spamlab_spambayes.Token_db
module Prob_cache = Spamlab_spambayes.Prob_cache
module Tokenizer = Spamlab_tokenizer.Tokenizer
module Mbox = Spamlab_email.Mbox
module Fault = Spamlab_fault
module Obs = Spamlab_obs.Obs
module Clock = Spamlab_obs.Clock
module Pool = Spamlab_parallel.Pool
module Store = Spamlab_store.Store

type limits = {
  read_timeout_s : float;
  write_timeout_s : float;
  idle_timeout_s : float;
  max_conns : int;
  max_inflight : int;
  drain_s : float;
  degraded_after : int;
}

let default_limits =
  {
    read_timeout_s = 0.0;
    write_timeout_s = 0.0;
    idle_timeout_s = 0.0;
    max_conns = 0;
    max_inflight = 0;
    drain_s = 5.0;
    degraded_after = 0;
  }

(* Whether any robustness knob is armed.  Gates the new STATS lines so
   an unarmed daemon's STATS stays byte-identical to earlier releases
   (the standing disabled-path invariant); [drain_s] alone does not
   count — it only matters once a drain is actually underway. *)
let limits_armed l =
  l.read_timeout_s > 0.0 || l.write_timeout_s > 0.0 || l.idle_timeout_s > 0.0
  || l.max_conns > 0 || l.max_inflight > 0 || l.degraded_after > 0

type config = {
  addr : addr;
  db_path : string;
  tokenizer : Tokenizer.t;
  options : Options.t;
  publish_every : int;
  max_body : int;
  jobs : int;
  store : Store.config option;
  limits : limits;
}

and addr = Unix_sock of string | Tcp of string * int

let default_config ?addr ~db_path () =
  let addr =
    match addr with
    | Some a -> a
    | None ->
        Unix_sock (Filename.concat (Filename.dirname db_path) "spamlab.sock")
  in
  {
    addr;
    db_path;
    tokenizer = Tokenizer.spambayes;
    options = Options.default;
    publish_every = 32;
    max_body = Protocol.default_max_body;
    jobs = 1;
    store = None;
    limits = default_limits;
  }

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

(* Per-verb latency: log2-of-microseconds buckets.  Bucket [i] holds
   samples with [2^(i-1) <= us < 2^i] (bucket 0 holds us = 0), so the
   quantile render reports an upper bound, never a fabricated exact
   value. *)
type lat = { mutable count : int; mutable max_us : int; buckets : int array }

let lat () = { count = 0; max_us = 0; buckets = Array.make 63 0 }

let bucket_of_us us =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits us 0

let lat_record l us =
  let us = max 0 us in
  l.count <- l.count + 1;
  if us > l.max_us then l.max_us <- us;
  let b = bucket_of_us us in
  l.buckets.(b) <- l.buckets.(b) + 1

(* Upper bound of the bucket holding the q-quantile sample. *)
let lat_quantile l q =
  if l.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int l.count))) in
    let rec go i seen =
      if i >= Array.length l.buckets then l.max_us
      else
        let seen = seen + l.buckets.(i) in
        if seen >= rank then (if i = 0 then 0 else (1 lsl i) - 1) else go (i + 1) seen
    in
    min (go 0 0) l.max_us
  end

let n_verbs = 7

let verb_index : Protocol.verb -> int = function
  | Ping -> 0
  | Stats -> 1
  | Publish -> 2
  | Classify -> 3
  | Train _ -> 4
  | Untrain _ -> 5
  | Health -> 6

let verb_stat_name =
  [| "ping"; "stats"; "publish"; "classify"; "train"; "untrain"; "health" |]

let health_verb_index = 6

type stats = {
  mutable connections : int;
  mutable protocol_errors : int;
  mutable io_errors : int;
  requests : int array;  (* per verb_index *)
  mutable body_bytes : int;
  mutable classify_msgs : int;
  mutable classify_malformed : int;
  mutable verdict_ham : int;
  mutable verdict_unsure : int;
  mutable verdict_spam : int;
  mutable train_msgs : int;
  mutable train_malformed : int;
  mutable untrain_msgs : int;
  mutable untrain_malformed : int;
  (* Robustness counters (PR 10).  All timing- or load-dependent, so
     their STATS lines render in the nondeterministic tail, and only
     when limits are armed or the counter is nonzero. *)
  mutable shed_conns : int;  (* connections refused with BUSY *)
  mutable shed_requests : int;  (* requests answered BUSY over quota *)
  mutable timeout_read : int;
  mutable timeout_write : int;
  mutable timeout_idle : int;
  mutable degraded_entered : int;
  mutable degraded_recovered : int;
  mutable drain_aborted : int;  (* conns still open at the drain deadline *)
  latencies : lat array;  (* per verb_index *)
}

let make_stats () =
  {
    connections = 0;
    protocol_errors = 0;
    io_errors = 0;
    requests = Array.make n_verbs 0;
    body_bytes = 0;
    classify_msgs = 0;
    classify_malformed = 0;
    verdict_ham = 0;
    verdict_unsure = 0;
    verdict_spam = 0;
    train_msgs = 0;
    train_malformed = 0;
    untrain_msgs = 0;
    untrain_malformed = 0;
    shed_conns = 0;
    shed_requests = 0;
    timeout_read = 0;
    timeout_write = 0;
    timeout_idle = 0;
    degraded_entered = 0;
    degraded_recovered = 0;
    drain_aborted = 0;
    latencies = Array.init n_verbs (fun _ -> lat ());
  }

type t = {
  config : config;
  pool : Pool.t;
  mutable baseline : Token_db.t;  (* published state; classify reads this *)
  (* Shared probability cache over [baseline], rebuilt at each publish
     (the snapshot is immutable between publishes, so one single-
     generation cache refills lazily across the CLASSIFY pool fan-out
     and stays valid until the next publish swaps both out). *)
  mutable baseline_cache : Prob_cache.t;
  delta : Filter.t;  (* live training state, becomes baseline on publish *)
  store : Store.t option;  (* per-tenant state for User-routed requests *)
  mutable pending : int;
  mutable seq : int;
  (* Degraded-mode state machine: consecutive publish failures are a
     streak; at [limits.degraded_after] the daemon stops accepting
     mutations (TRAIN/UNTRAIN answer [ERR DEGRADED]) while CLASSIFY
     keeps serving the last published snapshot.  One successful
     publish recovers.  [draining] is set by {!run} once [stop] fires
     and is only read back by HEALTH. *)
  mutable degraded : bool;
  mutable publish_fault_streak : int;
  mutable draining : bool;
  stats : stats;
}

let publish_seq t = t.seq

(* Obs counters (cheap handles; no-ops while obs is disabled). *)
let c_requests = Obs.counter "serve.requests"
let c_connections = Obs.counter "serve.connections"
let c_protocol_errors = Obs.counter "serve.protocol_errors"
let c_publishes = Obs.counter "serve.publishes"

let obs_span_name = Array.map (fun v -> "serve.request." ^ v) verb_stat_name

(* ------------------------------------------------------------------ *)
(* State                                                               *)

let create config =
  match Spamlab_parallel.validate_jobs config.jobs with
  | Error e -> Error e
  | Ok jobs -> (
      let filter =
        if Sys.file_exists config.db_path then
          Filter.load_file ~options:config.options ~tokenizer:config.tokenizer
            config.db_path
        else
          Ok (Filter.create ~options:config.options ~tokenizer:config.tokenizer ())
      in
      match filter with
      | Error e -> Error e
      | Ok delta -> (
          (* When creating a tenant store, the shared filter state just
             loaded becomes the global prior every tenant starts from;
             reopening an existing store keeps its persisted prior. *)
          let store =
            match config.store with
            | None -> Ok None
            | Some scfg -> (
                match
                  Store.open_store ~options:config.options
                    ~prior:(Token_db.copy (Filter.db delta))
                    scfg
                with
                | Ok st -> Ok (Some st)
                | Error e -> Error e)
          in
          match store with
          | Error e -> Error e
          | Ok store ->
              (* Capture the loaded vocabulary in the frozen intern
                 snapshot so first-request classification probes
                 lock-free.  The shared snapshot cache is created after
                 the freeze so it is sized to the full vocabulary. *)
              Intern.freeze ();
              let baseline = Token_db.copy (Filter.db delta) in
              Ok
                {
                  config;
                  pool = Pool.create ~jobs;
                  baseline;
                  baseline_cache =
                    Prob_cache.create ~shared:true config.options baseline;
                  delta;
                  store;
                  pending = 0;
                  seq = 0;
                  degraded = false;
                  publish_fault_streak = 0;
                  draining = false;
                  stats = make_stats ();
                }))

let shutdown t =
  Option.iter Store.close t.store;
  Pool.shutdown t.pool

(* Degraded-state bookkeeping around every publish attempt.  Success
   resets the failure streak and recovers from degraded mode; failure
   grows the streak and, past the configured budget, enters it. *)
let note_publish_result t ~ok =
  if ok then begin
    t.publish_fault_streak <- 0;
    if t.degraded then begin
      t.degraded <- false;
      t.stats.degraded_recovered <- t.stats.degraded_recovered + 1
    end
  end
  else begin
    t.publish_fault_streak <- t.publish_fault_streak + 1;
    let budget = t.config.limits.degraded_after in
    if (not t.degraded) && budget > 0 && t.publish_fault_streak >= budget
    then begin
      t.degraded <- true;
      t.stats.degraded_entered <- t.stats.degraded_entered + 1
    end
  end

(* Publish: persist the delta via the crash-safe store, then promote it
   to the classification baseline.  The fault site sits at the head —
   a crash here loses only unacknowledged training, and the on-disk
   state is the previous publish (the client replay contract).  With a
   tenant store, a publish is also its durability point: every
   journaled op is committed before the shared filter advances. *)
let publish t =
  match
    Fault.check "serve.publish";
    Option.iter Store.commit t.store;
    Filter.save_file t.delta t.config.db_path
  with
  | exception e ->
      (* Crash faults exited inside the check; anything raised here is
         a recoverable publish failure feeding the degraded budget. *)
      note_publish_result t ~ok:false;
      raise e
  | () ->
      t.baseline <- Token_db.copy (Filter.db t.delta);
      t.seq <- t.seq + 1;
      t.pending <- 0;
      Intern.freeze ();
      (* Fresh single-generation cache over the new snapshot
         (post-freeze, so it covers tokens trained since the last
         publish). *)
      t.baseline_cache <-
        Prob_cache.create ~shared:true t.config.options t.baseline;
      note_publish_result t ~ok:true;
      Obs.incr c_publishes

(* ------------------------------------------------------------------ *)
(* Verb execution                                                      *)

let render_classify t results =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i r ->
      match r with
      | None ->
          t.stats.classify_malformed <- t.stats.classify_malformed + 1;
          Buffer.add_string b (Printf.sprintf "%d malformed\n" i)
      | Some (r : Classify.result) ->
          t.stats.classify_msgs <- t.stats.classify_msgs + 1;
          (match r.verdict with
          | Label.Ham_v -> t.stats.verdict_ham <- t.stats.verdict_ham + 1
          | Label.Unsure_v -> t.stats.verdict_unsure <- t.stats.verdict_unsure + 1
          | Label.Spam_v -> t.stats.verdict_spam <- t.stats.verdict_spam + 1);
          Buffer.add_string b
            (Printf.sprintf "%d %s %.6f\n" i
               (Label.verdict_to_string r.verdict)
               r.indicator))
    results;
  Buffer.contents b

(* The engine is captured in the task closure before the fan-out, so
   workers see it through the pool's own synchronization rather than
   re-reading the mutable [baseline_cache] field mid-flight. *)
let classify_engine t engine body =
  let chunks = Ingest.raw_message_chunks body in
  let results =
    Pool.map_array t.pool
      (fun (off, len) ->
        Ingest.classify_raw_engine engine t.config.tokenizer body ~off ~len)
      chunks
  in
  Protocol.Ok (render_classify t results)

let classify t body =
  classify_engine t (Classify.engine_cached t.baseline_cache) body

(* Tenant classification reads the user's overlay under the shard lock,
   scoring through the store's shared prior cache plus the overlay's
   dirty set.  Like the shared path, it probes the frozen intern
   snapshot: tokens a tenant trained since the last publish read as
   unseen until the next publish refreezes — the same published-state
   contract. *)
let tenant_classify t st user body =
  Store.with_user_engine st user (fun engine -> classify_engine t engine body)

(* Shared tail of every TRAIN/UNTRAIN: pending drives the auto-publish
   cadence (tenant ops included — a publish is the store's durability
   point), and the ack always reports post-publish pending/seq.

   A {e recoverable} auto-publish failure must not turn a training that
   did apply into an [Err] — the client would replay it and double-
   train.  Instead the ack stays [Ok] with [pending] still nonzero (so
   the client keeps the batch buffered for replay against the
   still-unpublished state) plus a [publish_error=1] marker; the
   failure itself feeds the degraded budget inside [publish].  On the
   disabled path publishes never fail, so ack bytes are unchanged. *)
(* Restart beacon: with any limit armed, mutation acks also carry the
   daemon's process id.  A client that slept through a crash-and-restart
   sees no transport error, and before the first publish a seq of 0
   gives no regression signal either — the boot id changing is the only
   reliable cue that buffered training was lost and must be replayed.
   Unarmed daemons keep the historical ack bytes. *)
let boot_field t =
  if limits_armed t.config.limits then
    Printf.sprintf " boot=%d" (Unix.getpid ())
  else ""

(* [user_msgs]: tenant acks (limits armed) also carry the tenant's
   total message count after the apply.  The count is durable with the
   overlay itself, so a restarted daemon reports exactly how much of a
   tenant's history survived — the client's replay reconciles against
   it instead of re-training batches that some publish (possibly
   another client's, whose ack it never saw) already made durable. *)
let train_ack t ~key ?user_msgs n dropped =
  t.pending <- t.pending + n;
  let publish_failed =
    if t.config.publish_every > 0 && t.pending >= t.config.publish_every then
      match publish t with
      | () -> false
      | exception (Fault.Injected _ | Sys_error _ | Unix.Unix_error _) -> true
    else false
  in
  Protocol.Ok
    (Printf.sprintf "%s=%d malformed=%d pending=%d seq=%d%s%s%s\n" key n dropped
       t.pending t.seq (boot_field t)
       (match user_msgs with
       | Some m when limits_armed t.config.limits ->
           Printf.sprintf " user.msgs=%d" m
       | _ -> "")
       (if publish_failed then " publish_error=1" else ""))

let train t cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  List.iter (Filter.train t.delta cls) msgs;
  let n = List.length msgs in
  t.stats.train_msgs <- t.stats.train_msgs + n;
  t.stats.train_malformed <- t.stats.train_malformed + dropped;
  train_ack t ~key:"trained" n dropped

let untrain t cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  (* Token_db.untrain validates before mutating, so each message is
     all-or-nothing; an impossible untrain aborts the rest of the
     batch with the already-valid prefix applied. *)
  List.iter (Filter.untrain t.delta cls) msgs;
  let n = List.length msgs in
  t.stats.untrain_msgs <- t.stats.untrain_msgs + n;
  t.stats.untrain_malformed <- t.stats.untrain_malformed + dropped;
  train_ack t ~key:"untrained" n dropped

(* The [user.msgs=] reconciliation count for tenant acks.  Computed
   only when limits are armed: the extra overlay read would otherwise
   perturb the unarmed daemon's store.* STATS counters, which the
   disabled-path byte-compatibility contract pins. *)
let tenant_msgs t st user =
  if limits_armed t.config.limits then
    Some
      (Store.with_user st user (fun db ->
           Token_db.nspam db + Token_db.nham db))
  else None

(* Tenant training journals per-message ops against the user's overlay;
   the shared delta is only consulted for tokenization.  A fault partway
   through the batch (e.g. an injected journal-append failure) would
   otherwise leave a silently-applied prefix behind an [Err] ack — the
   client could neither drop nor retry the request safely — so the
   applied prefix is rolled back (untrain is the exact inverse of
   train) and the whole request is all-or-nothing. *)
let tenant_train t st user cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  let applied = ref [] in
  (match
     List.iter
       (fun m ->
         let features = Filter.features t.delta m in
         Store.train st ~user cls features;
         applied := features :: !applied)
       msgs
   with
  | () -> ()
  | exception e ->
      (* The undo ops traverse the same fault sites; retry transients
         hard — an abandoned undo would leave the partial prefix the
         rollback exists to prevent. *)
      let rec undo tries features =
        try Store.untrain st ~user cls features
        with exn when Fault.is_transient exn && tries < 8 ->
          undo (tries + 1) features
      in
      List.iter (undo 0) !applied;
      raise e);
  let n = List.length msgs in
  t.stats.train_msgs <- t.stats.train_msgs + n;
  t.stats.train_malformed <- t.stats.train_malformed + dropped;
  let user_msgs = tenant_msgs t st user in
  train_ack t ~key:"trained" ?user_msgs n dropped

let tenant_untrain t st user cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  (* Store.untrain validates before journaling, so each message is
     all-or-nothing on disk as well as in memory. *)
  List.iter
    (fun m -> Store.untrain st ~user cls (Filter.features t.delta m))
    msgs;
  let n = List.length msgs in
  t.stats.untrain_msgs <- t.stats.untrain_msgs + n;
  t.stats.untrain_malformed <- t.stats.untrain_malformed + dropped;
  let user_msgs = tenant_msgs t st user in
  train_ack t ~key:"untrained" ?user_msgs n dropped

let stats_payload t =
  let s = t.stats in
  let b = Buffer.create 512 in
  let line name v = Buffer.add_string b (Printf.sprintf "%s %d\n" name v) in
  (* Deterministic counters, sorted by name. *)
  line "body.bytes" s.body_bytes;
  line "classify.malformed" s.classify_malformed;
  line "classify.messages" s.classify_msgs;
  line "connections" s.connections;
  line "io.errors" s.io_errors;
  line "protocol.errors" s.protocol_errors;
  line "publish.seq" t.seq;
  let sorted_verbs =
    (* verb indices in lexicographic order of their stat names *)
    [| 3; 6; 0; 2; 1; 4; 5 |]
  in
  (* [requests.health] only renders once HEALTH has been used (or any
     robustness knob is armed): a daemon run with none of the new
     machinery keeps the exact STATS bytes of earlier releases. *)
  let armed = limits_armed t.config.limits in
  Array.iter
    (fun i ->
      if i <> health_verb_index || armed || s.requests.(i) > 0 then
        line ("requests." ^ verb_stat_name.(i)) s.requests.(i))
    sorted_verbs;
  line "train.malformed" s.train_malformed;
  line "train.messages" s.train_msgs;
  line "train.pending" t.pending;
  line "untrain.malformed" s.untrain_malformed;
  line "untrain.messages" s.untrain_msgs;
  line "verdicts.ham" s.verdict_ham;
  line "verdicts.spam" s.verdict_spam;
  line "verdicts.unsure" s.verdict_unsure;
  (* Wall-clock lines: real time, not jobs-invariant; the "latency."
     prefix is the filtering contract for deterministic consumers. *)
  Array.iter
    (fun i ->
      let l = s.latencies.(i) in
      if l.count > 0 then
        Buffer.add_string b
          (Printf.sprintf "latency.%s count=%d p50us<=%d p99us<=%d maxus=%d\n"
             verb_stat_name.(i) l.count (lat_quantile l 0.50)
             (lat_quantile l 0.99) l.max_us))
    sorted_verbs;
  (* Tenant-store cache/journal metrics: like "latency.", these live
     after the deterministic block — cache hit/miss/eviction splits
     depend on runtime interleavings, so deterministic consumers filter
     the "store." prefix too. *)
  (match t.store with
  | None -> ()
  | Some st ->
      let ss = Store.stats st in
      line "store.cached" ss.Store.cached;
      line "store.compactions" ss.Store.compactions;
      line "store.evictions" ss.Store.evictions;
      line "store.journal_bytes" ss.Store.journal_bytes;
      line "store.journal_ops" ss.Store.journal_ops;
      line "store.overlay_hits" ss.Store.hits;
      line "store.overlay_misses" ss.Store.misses);
  (* Robustness counters: load- and timing-dependent (how many BUSYs a
     client sees depends on scheduling), so they live with the other
     nondeterministic tails and only when armed or nonzero — filter
     the "shed."/"timeout."/"degraded."/"drain." prefixes along with
     "latency."/"store." for deterministic consumption. *)
  if
    limits_armed t.config.limits
    || s.shed_conns > 0 || s.shed_requests > 0 || s.timeout_read > 0
    || s.timeout_write > 0 || s.timeout_idle > 0 || s.degraded_entered > 0
    || s.drain_aborted > 0
  then begin
    line "degraded.entered" s.degraded_entered;
    line "degraded.recovered" s.degraded_recovered;
    line "drain.aborted" s.drain_aborted;
    line "shed.connections" s.shed_conns;
    line "shed.requests" s.shed_requests;
    line "timeout.idle" s.timeout_idle;
    line "timeout.read" s.timeout_read;
    line "timeout.write" s.timeout_write
  end;
  Buffer.contents b

let health_payload t =
  let state =
    if t.draining then "DRAINING"
    else if t.degraded then "DEGRADED"
    else "READY"
  in
  Printf.sprintf
    "state=%s seq=%d degraded.entered=%d degraded.recovered=%d \
     publish.fault.streak=%d\n"
    state t.seq t.stats.degraded_entered t.stats.degraded_recovered
    t.publish_fault_streak

let exec t (req : Protocol.request) =
  (* User-routed requests address per-tenant state; without a store
     that routing cannot be honoured and silently training the shared
     filter instead would be wrong, so it is a request-level error. *)
  let tenant f g =
    match (req.user, t.store) with
    | None, _ -> f ()
    | Some user, Some st -> g user st
    | Some _, None ->
        Protocol.Err "User routing requires a tenant store (serve --store-dir)"
  in
  match req.verb with
  | Protocol.Ping -> Protocol.Ok "pong\n"
  | Protocol.Stats -> Protocol.Ok (stats_payload t)
  | Protocol.Health -> Protocol.Ok (health_payload t)
  | Protocol.Publish ->
      publish t;
      (* An explicit PUBLISH also folds every journal into its segment
         — the canonical on-disk form the crash gate byte-compares. *)
      Option.iter Store.compact_all t.store;
      Protocol.Ok (Printf.sprintf "published seq=%d%s\n" t.seq (boot_field t))
  | Protocol.Classify ->
      tenant
        (fun () -> classify t req.body)
        (fun user st -> tenant_classify t st user req.body)
  | Protocol.Train _ | Protocol.Untrain _ when t.degraded ->
      (* Refused before any state is touched, so a degraded-mode TRAIN
         is safely retryable once a publish recovers.  The "DEGRADED"
         prefix is the client's retry cue. *)
      Protocol.Err
        "DEGRADED: mutations suspended after repeated publish failures; \
         classify still serves the last published snapshot (PUBLISH to \
         recover)"
  | Protocol.Train cls ->
      tenant
        (fun () -> train t cls req.body)
        (fun user st -> tenant_train t st user cls req.body)
  | Protocol.Untrain cls ->
      tenant
        (fun () -> untrain t cls req.body)
        (fun user st -> tenant_untrain t st user cls req.body)

let handle_request t (req : Protocol.request) =
  let vi = verb_index req.verb in
  t.stats.requests.(vi) <- t.stats.requests.(vi) + 1;
  t.stats.body_bytes <- t.stats.body_bytes + String.length req.body;
  Obs.incr c_requests;
  let start_ns = Clock.now_ns () in
  let resp =
    try exec t req with
    (* Crash faults exit inside [Fault.check]; anything raised is a
       degradable failure answered on this connection. *)
    | Fault.Injected _ as e -> Protocol.Err (Printexc.to_string e)
    | Spamlab_parallel.Task_failed { site; attempts } ->
        Protocol.Err
          (Printf.sprintf "task failed at %s after %d attempts" site attempts)
    | Sys_error e -> Protocol.Err e
    | Invalid_argument e -> Protocol.Err e
    | Unix.Unix_error (e, fn, _) ->
        Protocol.Err (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  in
  let stop_ns = Clock.now_ns () in
  lat_record t.stats.latencies.(vi)
    (Int64.to_int (Int64.div (Int64.sub stop_ns start_ns) 1000L));
  if Obs.enabled () then Obs.record_span obs_span_name.(vi) ~start_ns ~stop_ns;
  resp

(* ------------------------------------------------------------------ *)
(* Connection loop                                                     *)

let send_response ?deadline fd resp =
  let s = Protocol.render_response resp in
  Spamlab_io.really_write_string ~site:"serve.write" ?deadline fd s 0
    (String.length s)

let send_best_effort ?deadline fd resp =
  try send_response ?deadline fd resp with _ -> ()

let serve_connection t fd =
  let reader = Spamlab_io.reader ~site:"serve.read" fd in
  let rec loop () =
    match Protocol.recv_request ~max_body:t.config.max_body reader with
    | `Eof -> ()
    | `Error e ->
        (* Framing is gone; answer once and drop the connection. *)
        t.stats.protocol_errors <- t.stats.protocol_errors + 1;
        Obs.incr c_protocol_errors;
        send_best_effort fd (Protocol.Err e)
    | `Request req -> (
        let resp = handle_request t req in
        match send_response fd resp with
        | () -> loop ()
        | exception (Unix.Unix_error _ | Sys_error _) ->
            t.stats.io_errors <- t.stats.io_errors + 1)
  in
  try loop () with
  | End_of_file | Unix.Unix_error _ | Sys_error _ ->
      t.stats.io_errors <- t.stats.io_errors + 1
  | Fault.Injected _ as e ->
      (* A fatal injected read fault (transients were already retried
         by Spamlab_io): degrade to one ERR, drop the connection. *)
      t.stats.io_errors <- t.stats.io_errors + 1;
      send_best_effort fd (Protocol.Err (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)

let bind_listen = function
  | Unix_sock path -> (
      try
        (match Unix.lstat path with
        | { st_kind = S_SOCK; _ } -> Unix.unlink path
        | _ -> failwith (path ^ ": exists and is not a socket")
        | exception Unix.Unix_error (ENOENT, _, _) -> ());
        let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        Unix.bind fd (ADDR_UNIX path);
        Unix.listen fd 64;
        Ok (fd, fun () -> try Unix.unlink path with _ -> ())
      with
      | Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
      | Failure m -> Error m)
  | Tcp (host, port) -> (
      try
        let ip = Unix.inet_addr_of_string host in
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        Unix.setsockopt fd SO_REUSEADDR true;
        Unix.bind fd (ADDR_INET (ip, port));
        Unix.listen fd 64;
        Ok (fd, fun () -> ())
      with
      | Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e))
      | Failure _ -> Error (Printf.sprintf "bad listen address %S" host))

(* ------------------------------------------------------------------ *)
(* Multiplexed event loop                                              *)

(* One admitted connection.  The reader persists across rounds so a
   request frame may arrive in arbitrarily many pieces; [last_active]
   drives idle reaping. *)
type conn = {
  c_fd : Unix.file_descr;
  c_reader : Spamlab_io.reader;
  mutable last_active : float;  (* monotonic seconds *)
}

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let opt_deadline ~now timeout_s =
  if timeout_s > 0.0 then Some (now +. timeout_s) else None

(* Serve exactly one request from [c].  [shed] answers BUSY without
   executing (the frame is still read and discarded — the stream stays
   framed).  Returns [`Keep] to keep the connection, [`Close] to drop
   it.  The read deadline is absolute across the whole frame, so a
   peer trickling bytes cannot renew its budget; it is disarmed before
   the (possibly slow) execution so only wire time counts. *)
let serve_one t c ~shed ~now =
  let lim = t.config.limits in
  Spamlab_io.set_deadline c.c_reader (opt_deadline ~now lim.read_timeout_s);
  let outcome =
    match Protocol.recv_request ~max_body:t.config.max_body c.c_reader with
    | `Eof -> `Close
    | `Error e ->
        t.stats.protocol_errors <- t.stats.protocol_errors + 1;
        Obs.incr c_protocol_errors;
        send_best_effort
          ?deadline:(opt_deadline ~now lim.write_timeout_s)
          c.c_fd (Protocol.Err e);
        `Close
    | `Request req -> (
        Spamlab_io.set_deadline c.c_reader None;
        let resp =
          if shed then begin
            t.stats.shed_requests <- t.stats.shed_requests + 1;
            Protocol.Busy
          end
          else handle_request t req
        in
        let write_deadline =
          opt_deadline ~now:(Spamlab_io.monotonic_s ()) lim.write_timeout_s
        in
        match send_response ?deadline:write_deadline c.c_fd resp with
        | () ->
            c.last_active <- Spamlab_io.monotonic_s ();
            `Keep
        | exception Spamlab_io.Timeout _ ->
            t.stats.timeout_write <- t.stats.timeout_write + 1;
            `Close
        | exception (Unix.Unix_error _ | Sys_error _ | Fault.Injected _) ->
            (* Includes a fatal injected write fault — the response is
               torn, so the connection is all that can be given up. *)
            t.stats.io_errors <- t.stats.io_errors + 1;
            `Close)
    | exception Spamlab_io.Timeout _ ->
        t.stats.timeout_read <- t.stats.timeout_read + 1;
        send_best_effort
          ?deadline:(opt_deadline ~now:(Spamlab_io.monotonic_s ()) 1.0)
          c.c_fd
          (Protocol.Err "read deadline exceeded");
        `Close
    | exception (End_of_file | Unix.Unix_error _ | Sys_error _) ->
        t.stats.io_errors <- t.stats.io_errors + 1;
        `Close
    | exception Fault.Injected _ ->
        (* A fatal injected read fault (transients were retried by
           Spamlab_io): degrade to one ERR, drop the connection. *)
        t.stats.io_errors <- t.stats.io_errors + 1;
        send_best_effort c.c_fd (Protocol.Err "injected read fault");
        `Close
  in
  Spamlab_io.set_deadline c.c_reader None;
  outcome

(* Admission: accept whatever is ready; over [max_conns] the newcomer
   is told BUSY and closed — deterministic shedding, not a silent RST
   from a full backlog. *)
let accept_admit t lfd conns ~now =
  match Fault.check "serve.accept" with
  | exception e when Fault.is_transient e ->
      (* The connection stays queued in the listen backlog; the next
         select round retries the accept. *)
      conns
  | () -> (
      match Unix.accept ~cloexec:true lfd with
      | exception
          Unix.Unix_error ((EINTR | ECONNABORTED | EAGAIN | EWOULDBLOCK), _, _)
        ->
          conns
      | fd, _ ->
          let lim = t.config.limits in
          if lim.max_conns > 0 && List.length conns >= lim.max_conns then begin
            t.stats.shed_conns <- t.stats.shed_conns + 1;
            send_best_effort ?deadline:(opt_deadline ~now 1.0) fd Protocol.Busy;
            close_fd fd;
            conns
          end
          else begin
            t.stats.connections <- t.stats.connections + 1;
            Obs.incr c_connections;
            conns
            @ [
                {
                  c_fd = fd;
                  c_reader = Spamlab_io.reader ~site:"serve.read" fd;
                  last_active = now;
                };
              ]
          end)

let run ?(ready = fun _ -> ()) ?(stop = fun () -> false) t =
  (* A peer closing mid-response must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match bind_listen t.config.addr with
  | Error e -> Error e
  | Ok (lfd, cleanup) ->
      let lim = t.config.limits in
      let conns = ref [] in
      let drain_deadline = ref infinity in
      let finish () =
        List.iter (fun c -> close_fd c.c_fd) !conns;
        conns := [];
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        cleanup ()
      in
      ready (Unix.getsockname lfd);
      (* Each round: select over the listener (unless draining) and
         every admitted connection, then serve at most one request per
         ready connection in admission order — [max_inflight] caps how
         many execute per round, the rest answer BUSY.  Connections
         with bytes still buffered count as ready without selecting
         (pipelined frames never block on the descriptor again). *)
      let rec loop () =
        let now = Spamlab_io.monotonic_s () in
        if !drain_deadline = infinity && stop () then begin
          t.draining <- true;
          drain_deadline :=
            if lim.drain_s > 0.0 then now +. lim.drain_s else now
        end;
        let draining = t.draining in
        if draining && (!conns = [] || now >= !drain_deadline) then begin
          (* Drain deadline: whatever is still open is abandoned. *)
          t.stats.drain_aborted <- t.stats.drain_aborted + List.length !conns
        end
        else begin
          let listen_fds = if draining then [] else [ lfd ] in
          let conn_fds = List.map (fun c -> c.c_fd) !conns in
          let have_buffered =
            List.exists (fun c -> Spamlab_io.buffered c.c_reader > 0) !conns
          in
          let tick =
            if have_buffered then 0.0
            else if draining then min 0.2 (max 0.0 (!drain_deadline -. now))
            else 0.2
          in
          match Unix.select (listen_fds @ conn_fds) [] [] tick with
          | exception Unix.Unix_error (EINTR, _, _) -> loop ()
          | readable, _, _ ->
              let now = Spamlab_io.monotonic_s () in
              if (not draining) && List.mem lfd readable then
                conns := accept_admit t lfd !conns ~now;
              let quota =
                if lim.max_inflight > 0 then lim.max_inflight else max_int
              in
              let executed = ref 0 in
              conns :=
                List.filter
                  (fun c ->
                    let ready_now =
                      List.mem c.c_fd readable
                      || Spamlab_io.buffered c.c_reader > 0
                    in
                    if not ready_now then
                      if draining then begin
                        (* Between requests with nothing in flight:
                           nothing to finish, so a drain closes it at
                           once rather than waiting out the deadline. *)
                        close_fd c.c_fd;
                        false
                      end
                      else true
                    else begin
                      let shed = !executed >= quota in
                      if not shed then incr executed;
                      match serve_one t c ~shed ~now with
                      | `Keep -> true
                      | `Close ->
                          close_fd c.c_fd;
                          false
                    end)
                  !conns;
              (* Idle reaping: connections that have not completed a
                 request recently (including never-started ones) are
                 dropped without ceremony, spamd-style. *)
              if lim.idle_timeout_s > 0.0 then begin
                let cutoff = Spamlab_io.monotonic_s () -. lim.idle_timeout_s in
                conns :=
                  List.filter
                    (fun c ->
                      if c.last_active < cutoff then begin
                        t.stats.timeout_idle <- t.stats.timeout_idle + 1;
                        close_fd c.c_fd;
                        false
                      end
                      else true)
                    !conns
              end;
              loop ()
        end
      in
      (match loop () with
      | () -> ()
      | exception e ->
          finish ();
          raise e);
      finish ();
      Ok ()
