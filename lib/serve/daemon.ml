module Filter = Spamlab_spambayes.Filter
module Options = Spamlab_spambayes.Options
module Label = Spamlab_spambayes.Label
module Classify = Spamlab_spambayes.Classify
module Ingest = Spamlab_spambayes.Ingest
module Intern = Spamlab_spambayes.Intern
module Token_db = Spamlab_spambayes.Token_db
module Prob_cache = Spamlab_spambayes.Prob_cache
module Tokenizer = Spamlab_tokenizer.Tokenizer
module Mbox = Spamlab_email.Mbox
module Fault = Spamlab_fault
module Obs = Spamlab_obs.Obs
module Clock = Spamlab_obs.Clock
module Pool = Spamlab_parallel.Pool
module Store = Spamlab_store.Store

type config = {
  addr : addr;
  db_path : string;
  tokenizer : Tokenizer.t;
  options : Options.t;
  publish_every : int;
  max_body : int;
  jobs : int;
  store : Store.config option;
}

and addr = Unix_sock of string | Tcp of string * int

let default_config ?addr ~db_path () =
  let addr =
    match addr with
    | Some a -> a
    | None ->
        Unix_sock (Filename.concat (Filename.dirname db_path) "spamlab.sock")
  in
  {
    addr;
    db_path;
    tokenizer = Tokenizer.spambayes;
    options = Options.default;
    publish_every = 32;
    max_body = Protocol.default_max_body;
    jobs = 1;
    store = None;
  }

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

(* Per-verb latency: log2-of-microseconds buckets.  Bucket [i] holds
   samples with [2^(i-1) <= us < 2^i] (bucket 0 holds us = 0), so the
   quantile render reports an upper bound, never a fabricated exact
   value. *)
type lat = { mutable count : int; mutable max_us : int; buckets : int array }

let lat () = { count = 0; max_us = 0; buckets = Array.make 63 0 }

let bucket_of_us us =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits us 0

let lat_record l us =
  let us = max 0 us in
  l.count <- l.count + 1;
  if us > l.max_us then l.max_us <- us;
  let b = bucket_of_us us in
  l.buckets.(b) <- l.buckets.(b) + 1

(* Upper bound of the bucket holding the q-quantile sample. *)
let lat_quantile l q =
  if l.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int l.count))) in
    let rec go i seen =
      if i >= Array.length l.buckets then l.max_us
      else
        let seen = seen + l.buckets.(i) in
        if seen >= rank then (if i = 0 then 0 else (1 lsl i) - 1) else go (i + 1) seen
    in
    min (go 0 0) l.max_us
  end

let n_verbs = 6

let verb_index : Protocol.verb -> int = function
  | Ping -> 0
  | Stats -> 1
  | Publish -> 2
  | Classify -> 3
  | Train _ -> 4
  | Untrain _ -> 5

let verb_stat_name = [| "ping"; "stats"; "publish"; "classify"; "train"; "untrain" |]

type stats = {
  mutable connections : int;
  mutable protocol_errors : int;
  mutable io_errors : int;
  requests : int array;  (* per verb_index *)
  mutable body_bytes : int;
  mutable classify_msgs : int;
  mutable classify_malformed : int;
  mutable verdict_ham : int;
  mutable verdict_unsure : int;
  mutable verdict_spam : int;
  mutable train_msgs : int;
  mutable train_malformed : int;
  mutable untrain_msgs : int;
  mutable untrain_malformed : int;
  latencies : lat array;  (* per verb_index *)
}

let make_stats () =
  {
    connections = 0;
    protocol_errors = 0;
    io_errors = 0;
    requests = Array.make n_verbs 0;
    body_bytes = 0;
    classify_msgs = 0;
    classify_malformed = 0;
    verdict_ham = 0;
    verdict_unsure = 0;
    verdict_spam = 0;
    train_msgs = 0;
    train_malformed = 0;
    untrain_msgs = 0;
    untrain_malformed = 0;
    latencies = Array.init n_verbs (fun _ -> lat ());
  }

type t = {
  config : config;
  pool : Pool.t;
  mutable baseline : Token_db.t;  (* published state; classify reads this *)
  (* Shared probability cache over [baseline], rebuilt at each publish
     (the snapshot is immutable between publishes, so one single-
     generation cache refills lazily across the CLASSIFY pool fan-out
     and stays valid until the next publish swaps both out). *)
  mutable baseline_cache : Prob_cache.t;
  delta : Filter.t;  (* live training state, becomes baseline on publish *)
  store : Store.t option;  (* per-tenant state for User-routed requests *)
  mutable pending : int;
  mutable seq : int;
  stats : stats;
}

let publish_seq t = t.seq

(* Obs counters (cheap handles; no-ops while obs is disabled). *)
let c_requests = Obs.counter "serve.requests"
let c_connections = Obs.counter "serve.connections"
let c_protocol_errors = Obs.counter "serve.protocol_errors"
let c_publishes = Obs.counter "serve.publishes"

let obs_span_name = Array.map (fun v -> "serve.request." ^ v) verb_stat_name

(* ------------------------------------------------------------------ *)
(* State                                                               *)

let create config =
  match Spamlab_parallel.validate_jobs config.jobs with
  | Error e -> Error e
  | Ok jobs -> (
      let filter =
        if Sys.file_exists config.db_path then
          Filter.load_file ~options:config.options ~tokenizer:config.tokenizer
            config.db_path
        else
          Ok (Filter.create ~options:config.options ~tokenizer:config.tokenizer ())
      in
      match filter with
      | Error e -> Error e
      | Ok delta -> (
          (* When creating a tenant store, the shared filter state just
             loaded becomes the global prior every tenant starts from;
             reopening an existing store keeps its persisted prior. *)
          let store =
            match config.store with
            | None -> Ok None
            | Some scfg -> (
                match
                  Store.open_store ~options:config.options
                    ~prior:(Token_db.copy (Filter.db delta))
                    scfg
                with
                | Ok st -> Ok (Some st)
                | Error e -> Error e)
          in
          match store with
          | Error e -> Error e
          | Ok store ->
              (* Capture the loaded vocabulary in the frozen intern
                 snapshot so first-request classification probes
                 lock-free.  The shared snapshot cache is created after
                 the freeze so it is sized to the full vocabulary. *)
              Intern.freeze ();
              let baseline = Token_db.copy (Filter.db delta) in
              Ok
                {
                  config;
                  pool = Pool.create ~jobs;
                  baseline;
                  baseline_cache =
                    Prob_cache.create ~shared:true config.options baseline;
                  delta;
                  store;
                  pending = 0;
                  seq = 0;
                  stats = make_stats ();
                }))

let shutdown t =
  Option.iter Store.close t.store;
  Pool.shutdown t.pool

(* Publish: persist the delta via the crash-safe store, then promote it
   to the classification baseline.  The fault site sits at the head —
   a crash here loses only unacknowledged training, and the on-disk
   state is the previous publish (the client replay contract).  With a
   tenant store, a publish is also its durability point: every
   journaled op is committed before the shared filter advances. *)
let publish t =
  Fault.check "serve.publish";
  Option.iter Store.commit t.store;
  Filter.save_file t.delta t.config.db_path;
  t.baseline <- Token_db.copy (Filter.db t.delta);
  t.seq <- t.seq + 1;
  t.pending <- 0;
  Intern.freeze ();
  (* Fresh single-generation cache over the new snapshot (post-freeze,
     so it covers tokens trained since the last publish). *)
  t.baseline_cache <-
    Prob_cache.create ~shared:true t.config.options t.baseline;
  Obs.incr c_publishes

(* ------------------------------------------------------------------ *)
(* Verb execution                                                      *)

let render_classify t results =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i r ->
      match r with
      | None ->
          t.stats.classify_malformed <- t.stats.classify_malformed + 1;
          Buffer.add_string b (Printf.sprintf "%d malformed\n" i)
      | Some (r : Classify.result) ->
          t.stats.classify_msgs <- t.stats.classify_msgs + 1;
          (match r.verdict with
          | Label.Ham_v -> t.stats.verdict_ham <- t.stats.verdict_ham + 1
          | Label.Unsure_v -> t.stats.verdict_unsure <- t.stats.verdict_unsure + 1
          | Label.Spam_v -> t.stats.verdict_spam <- t.stats.verdict_spam + 1);
          Buffer.add_string b
            (Printf.sprintf "%d %s %.6f\n" i
               (Label.verdict_to_string r.verdict)
               r.indicator))
    results;
  Buffer.contents b

(* The engine is captured in the task closure before the fan-out, so
   workers see it through the pool's own synchronization rather than
   re-reading the mutable [baseline_cache] field mid-flight. *)
let classify_engine t engine body =
  let chunks = Ingest.raw_message_chunks body in
  let results =
    Pool.map_array t.pool
      (fun (off, len) ->
        Ingest.classify_raw_engine engine t.config.tokenizer body ~off ~len)
      chunks
  in
  Protocol.Ok (render_classify t results)

let classify t body =
  classify_engine t (Classify.engine_cached t.baseline_cache) body

(* Tenant classification reads the user's overlay under the shard lock,
   scoring through the store's shared prior cache plus the overlay's
   dirty set.  Like the shared path, it probes the frozen intern
   snapshot: tokens a tenant trained since the last publish read as
   unseen until the next publish refreezes — the same published-state
   contract. *)
let tenant_classify t st user body =
  Store.with_user_engine st user (fun engine -> classify_engine t engine body)

(* Shared tail of every TRAIN/UNTRAIN: pending drives the auto-publish
   cadence (tenant ops included — a publish is the store's durability
   point), and the ack always reports post-publish pending/seq. *)
let train_ack t ~key n dropped =
  t.pending <- t.pending + n;
  if t.config.publish_every > 0 && t.pending >= t.config.publish_every then
    publish t;
  Protocol.Ok
    (Printf.sprintf "%s=%d malformed=%d pending=%d seq=%d\n" key n dropped
       t.pending t.seq)

let train t cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  List.iter (Filter.train t.delta cls) msgs;
  let n = List.length msgs in
  t.stats.train_msgs <- t.stats.train_msgs + n;
  t.stats.train_malformed <- t.stats.train_malformed + dropped;
  train_ack t ~key:"trained" n dropped

let untrain t cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  (* Token_db.untrain validates before mutating, so each message is
     all-or-nothing; an impossible untrain aborts the rest of the
     batch with the already-valid prefix applied. *)
  List.iter (Filter.untrain t.delta cls) msgs;
  let n = List.length msgs in
  t.stats.untrain_msgs <- t.stats.untrain_msgs + n;
  t.stats.untrain_malformed <- t.stats.untrain_malformed + dropped;
  train_ack t ~key:"untrained" n dropped

(* Tenant training journals per-message ops against the user's overlay;
   the shared delta is only consulted for tokenization. *)
let tenant_train t st user cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  List.iter (fun m -> Store.train st ~user cls (Filter.features t.delta m)) msgs;
  let n = List.length msgs in
  t.stats.train_msgs <- t.stats.train_msgs + n;
  t.stats.train_malformed <- t.stats.train_malformed + dropped;
  train_ack t ~key:"trained" n dropped

let tenant_untrain t st user cls body =
  let msgs, dropped = Mbox.parse_lenient body in
  (* Store.untrain validates before journaling, so each message is
     all-or-nothing on disk as well as in memory. *)
  List.iter
    (fun m -> Store.untrain st ~user cls (Filter.features t.delta m))
    msgs;
  let n = List.length msgs in
  t.stats.untrain_msgs <- t.stats.untrain_msgs + n;
  t.stats.untrain_malformed <- t.stats.untrain_malformed + dropped;
  train_ack t ~key:"untrained" n dropped

let stats_payload t =
  let s = t.stats in
  let b = Buffer.create 512 in
  let line name v = Buffer.add_string b (Printf.sprintf "%s %d\n" name v) in
  (* Deterministic counters, sorted by name. *)
  line "body.bytes" s.body_bytes;
  line "classify.malformed" s.classify_malformed;
  line "classify.messages" s.classify_msgs;
  line "connections" s.connections;
  line "io.errors" s.io_errors;
  line "protocol.errors" s.protocol_errors;
  line "publish.seq" t.seq;
  let sorted_verbs =
    (* verb indices in lexicographic order of their stat names *)
    [| 3; 0; 2; 1; 4; 5 |]
  in
  Array.iter
    (fun i -> line ("requests." ^ verb_stat_name.(i)) s.requests.(i))
    sorted_verbs;
  line "train.malformed" s.train_malformed;
  line "train.messages" s.train_msgs;
  line "train.pending" t.pending;
  line "untrain.malformed" s.untrain_malformed;
  line "untrain.messages" s.untrain_msgs;
  line "verdicts.ham" s.verdict_ham;
  line "verdicts.spam" s.verdict_spam;
  line "verdicts.unsure" s.verdict_unsure;
  (* Wall-clock lines: real time, not jobs-invariant; the "latency."
     prefix is the filtering contract for deterministic consumers. *)
  Array.iter
    (fun i ->
      let l = s.latencies.(i) in
      if l.count > 0 then
        Buffer.add_string b
          (Printf.sprintf "latency.%s count=%d p50us<=%d p99us<=%d maxus=%d\n"
             verb_stat_name.(i) l.count (lat_quantile l 0.50)
             (lat_quantile l 0.99) l.max_us))
    sorted_verbs;
  (* Tenant-store cache/journal metrics: like "latency.", these live
     after the deterministic block — cache hit/miss/eviction splits
     depend on runtime interleavings, so deterministic consumers filter
     the "store." prefix too. *)
  (match t.store with
  | None -> ()
  | Some st ->
      let ss = Store.stats st in
      line "store.cached" ss.Store.cached;
      line "store.compactions" ss.Store.compactions;
      line "store.evictions" ss.Store.evictions;
      line "store.journal_bytes" ss.Store.journal_bytes;
      line "store.journal_ops" ss.Store.journal_ops;
      line "store.overlay_hits" ss.Store.hits;
      line "store.overlay_misses" ss.Store.misses);
  Buffer.contents b

let exec t (req : Protocol.request) =
  (* User-routed requests address per-tenant state; without a store
     that routing cannot be honoured and silently training the shared
     filter instead would be wrong, so it is a request-level error. *)
  let tenant f g =
    match (req.user, t.store) with
    | None, _ -> f ()
    | Some user, Some st -> g user st
    | Some _, None ->
        Protocol.Err "User routing requires a tenant store (serve --store-dir)"
  in
  match req.verb with
  | Protocol.Ping -> Protocol.Ok "pong\n"
  | Protocol.Stats -> Protocol.Ok (stats_payload t)
  | Protocol.Publish ->
      publish t;
      (* An explicit PUBLISH also folds every journal into its segment
         — the canonical on-disk form the crash gate byte-compares. *)
      Option.iter Store.compact_all t.store;
      Protocol.Ok (Printf.sprintf "published seq=%d\n" t.seq)
  | Protocol.Classify ->
      tenant
        (fun () -> classify t req.body)
        (fun user st -> tenant_classify t st user req.body)
  | Protocol.Train cls ->
      tenant
        (fun () -> train t cls req.body)
        (fun user st -> tenant_train t st user cls req.body)
  | Protocol.Untrain cls ->
      tenant
        (fun () -> untrain t cls req.body)
        (fun user st -> tenant_untrain t st user cls req.body)

let handle_request t (req : Protocol.request) =
  let vi = verb_index req.verb in
  t.stats.requests.(vi) <- t.stats.requests.(vi) + 1;
  t.stats.body_bytes <- t.stats.body_bytes + String.length req.body;
  Obs.incr c_requests;
  let start_ns = Clock.now_ns () in
  let resp =
    try exec t req with
    (* Crash faults exit inside [Fault.check]; anything raised is a
       degradable failure answered on this connection. *)
    | Fault.Injected _ as e -> Protocol.Err (Printexc.to_string e)
    | Spamlab_parallel.Task_failed { site; attempts } ->
        Protocol.Err
          (Printf.sprintf "task failed at %s after %d attempts" site attempts)
    | Sys_error e -> Protocol.Err e
    | Invalid_argument e -> Protocol.Err e
    | Unix.Unix_error (e, fn, _) ->
        Protocol.Err (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  in
  let stop_ns = Clock.now_ns () in
  lat_record t.stats.latencies.(vi)
    (Int64.to_int (Int64.div (Int64.sub stop_ns start_ns) 1000L));
  if Obs.enabled () then Obs.record_span obs_span_name.(vi) ~start_ns ~stop_ns;
  resp

(* ------------------------------------------------------------------ *)
(* Connection loop                                                     *)

let send_response fd resp =
  let s = Protocol.render_response resp in
  Spamlab_io.really_write_string fd s 0 (String.length s)

let send_best_effort fd resp = try send_response fd resp with _ -> ()

let serve_connection t fd =
  let reader = Spamlab_io.reader ~site:"serve.read" fd in
  let rec loop () =
    match Protocol.recv_request ~max_body:t.config.max_body reader with
    | `Eof -> ()
    | `Error e ->
        (* Framing is gone; answer once and drop the connection. *)
        t.stats.protocol_errors <- t.stats.protocol_errors + 1;
        Obs.incr c_protocol_errors;
        send_best_effort fd (Protocol.Err e)
    | `Request req -> (
        let resp = handle_request t req in
        match send_response fd resp with
        | () -> loop ()
        | exception (Unix.Unix_error _ | Sys_error _) ->
            t.stats.io_errors <- t.stats.io_errors + 1)
  in
  try loop () with
  | End_of_file | Unix.Unix_error _ | Sys_error _ ->
      t.stats.io_errors <- t.stats.io_errors + 1
  | Fault.Injected _ as e ->
      (* A fatal injected read fault (transients were already retried
         by Spamlab_io): degrade to one ERR, drop the connection. *)
      t.stats.io_errors <- t.stats.io_errors + 1;
      send_best_effort fd (Protocol.Err (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)

let bind_listen = function
  | Unix_sock path -> (
      try
        (match Unix.lstat path with
        | { st_kind = S_SOCK; _ } -> Unix.unlink path
        | _ -> failwith (path ^ ": exists and is not a socket")
        | exception Unix.Unix_error (ENOENT, _, _) -> ());
        let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        Unix.bind fd (ADDR_UNIX path);
        Unix.listen fd 64;
        Ok (fd, fun () -> try Unix.unlink path with _ -> ())
      with
      | Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
      | Failure m -> Error m)
  | Tcp (host, port) -> (
      try
        let ip = Unix.inet_addr_of_string host in
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        Unix.setsockopt fd SO_REUSEADDR true;
        Unix.bind fd (ADDR_INET (ip, port));
        Unix.listen fd 64;
        Ok (fd, fun () -> ())
      with
      | Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e))
      | Failure _ -> Error (Printf.sprintf "bad listen address %S" host))

let accept_one t lfd =
  match Fault.check "serve.accept" with
  | exception e when Fault.is_transient e ->
      (* The connection stays queued in the listen backlog; the next
         select round retries the accept. *)
      ()
  | () -> (
      match Unix.accept ~cloexec:true lfd with
      | exception
          Unix.Unix_error ((EINTR | ECONNABORTED | EAGAIN | EWOULDBLOCK), _, _)
        ->
          ()
      | fd, _ ->
          t.stats.connections <- t.stats.connections + 1;
          Obs.incr c_connections;
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> serve_connection t fd))

let run ?(ready = fun _ -> ()) ?(stop = fun () -> false) t =
  (* A peer closing mid-response must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match bind_listen t.config.addr with
  | Error e -> Error e
  | Ok (lfd, cleanup) ->
      let finish () =
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        cleanup ()
      in
      ready (Unix.getsockname lfd);
      let rec loop () =
        if stop () then ()
        else
          match Unix.select [ lfd ] [] [] 0.2 with
          | exception Unix.Unix_error (EINTR, _, _) -> loop ()
          | [], _, _ -> loop ()
          | _ ->
              accept_one t lfd;
              loop ()
      in
      (match loop () with
      | () -> ()
      | exception e ->
          finish ();
          raise e);
      finish ();
      Ok ()
