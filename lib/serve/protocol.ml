module Label = Spamlab_spambayes.Label

type verb =
  | Ping
  | Stats
  | Publish
  | Classify
  | Train of Label.gold
  | Untrain of Label.gold
  | Health

type request = { verb : verb; body : string; user : string option }

let magic = "SPAMLAB/1.0"
let default_max_body = 16 * 1024 * 1024
let max_line = 1024

let verb_name = function
  | Ping -> "PING"
  | Stats -> "STATS"
  | Publish -> "PUBLISH"
  | Classify -> "CLASSIFY"
  | Train _ -> "TRAIN"
  | Untrain _ -> "UNTRAIN"
  | Health -> "HEALTH"

let has_body = function
  | Classify | Train _ | Untrain _ -> true
  | Ping | Stats | Publish | Health -> false

let class_of = function
  | Train c | Untrain c -> Some c
  | Ping | Stats | Publish | Classify | Health -> None

(* --------------------------------------------------------------- *)
(* Rendering                                                        *)

let render_request { verb; body; user } =
  let b = Buffer.create (String.length body + 80) in
  Buffer.add_string b (verb_name verb);
  Buffer.add_char b ' ';
  Buffer.add_string b magic;
  Buffer.add_string b "\r\n";
  (match user with
  | Some u ->
      Buffer.add_string b "User: ";
      Buffer.add_string b u;
      Buffer.add_string b "\r\n"
  | None -> ());
  (match class_of verb with
  | Some c ->
      Buffer.add_string b "Message-Class: ";
      Buffer.add_string b (Label.gold_to_string c);
      Buffer.add_string b "\r\n"
  | None -> ());
  if has_body verb then
    Buffer.add_string b
      (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  if has_body verb then Buffer.add_string b body;
  Buffer.contents b

(* --------------------------------------------------------------- *)
(* Parsing                                                          *)

let parse_content_length s =
  let n = String.length s in
  if n = 0 then Error "Content-Length: empty value"
  else
    let rec go i acc =
      if i >= n then Ok acc
      else
        match s.[i] with
        | '0' .. '9' as c ->
            let d = Char.code c - Char.code '0' in
            if acc > (max_int - d) / 10 then
              Error "Content-Length: value overflows"
            else go (i + 1) ((acc * 10) + d)
        | _ -> Error (Printf.sprintf "Content-Length: bad value %S" s)
    in
    go 0 0

let parse_verb = function
  | "PING" -> Some (fun _ -> Ping)
  | "STATS" -> Some (fun _ -> Stats)
  | "PUBLISH" -> Some (fun _ -> Publish)
  | "CLASSIFY" -> Some (fun _ -> Classify)
  | "TRAIN" -> Some (fun c -> Train c)
  | "UNTRAIN" -> Some (fun c -> Untrain c)
  | "HEALTH" -> Some (fun _ -> Health)
  | _ -> None

let parse_verb_line line =
  match String.index_opt line ' ' with
  | None -> Error (Printf.sprintf "malformed request line %S" line)
  | Some sp ->
      let verb = String.sub line 0 sp in
      let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
      if rest <> magic then
        Error (Printf.sprintf "unsupported protocol %S (want %s)" rest magic)
      else (
        match parse_verb verb with
        | None -> Error (Printf.sprintf "unknown verb %S" verb)
        | Some mk -> Ok (verb, mk))

(* A header line "Name: value"; names are matched case-insensitively. *)
let split_header line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "malformed header line %S" line)
  | Some colon ->
      let name = String.lowercase_ascii (String.sub line 0 colon) in
      let value =
        String.trim
          (String.sub line (colon + 1) (String.length line - colon - 1))
      in
      Ok (name, value)

let recv_request ?(max_body = default_max_body) reader =
  match Spamlab_io.read_line reader ~max:max_line with
  | `Eof -> `Eof
  | `Too_long -> `Error "request line too long"
  | `Line line -> (
      match parse_verb_line line with
      | Error e -> `Error e
      | Ok (verb_str, mk) -> (
          let content_length = ref None in
          let msg_class = ref None in
          let user = ref None in
          let rec headers () =
            match Spamlab_io.read_line reader ~max:max_line with
            | `Eof -> Error "unexpected EOF in request headers"
            | `Too_long -> Error "header line too long"
            | `Line "" -> Ok ()
            | `Line line -> (
                match split_header line with
                | Error e -> Error e
                | Ok ("content-length", v) -> (
                    match parse_content_length v with
                    | Error e -> Error e
                    | Ok n when n > max_body ->
                        Error
                          (Printf.sprintf
                             "Content-Length %d exceeds limit %d" n max_body)
                    | Ok n ->
                        content_length := Some n;
                        headers ())
                | Ok ("message-class", v) -> (
                    match Label.gold_of_string v with
                    | Error e -> Error e
                    | Ok c ->
                        msg_class := Some c;
                        headers ())
                | Ok ("user", v) ->
                    (* spamc-style per-user routing.  Empty would mean
                       "the anonymous tenant" ambiguously — reject. *)
                    if v = "" then Error "User: empty value"
                    else begin
                      user := Some v;
                      headers ()
                    end
                | Ok (name, _) ->
                    Error (Printf.sprintf "unknown header %S" name))
          in
          match headers () with
          | Error e -> `Error e
          | Ok () -> (
              let verb =
                match (verb_str, !msg_class) with
                | ("TRAIN" | "UNTRAIN"), None ->
                    Error (verb_str ^ " requires a Message-Class header")
                | _, c -> Ok (mk (Option.value c ~default:Label.Ham))
              in
              match verb with
              | Error e -> `Error e
              | Ok verb -> (
                  match (has_body verb, !content_length) with
                  | true, None ->
                      `Error (verb_str ^ " requires a Content-Length header")
                  | false, Some n when n > 0 ->
                      `Error (verb_str ^ " does not take a body")
                  | false, _ -> `Request { verb; body = ""; user = !user }
                  | true, Some n ->
                      let buf = Bytes.create n in
                      if Spamlab_io.read_exact reader buf 0 n then
                        `Request
                          {
                            verb;
                            body = Bytes.unsafe_to_string buf;
                            user = !user;
                          }
                      else `Error "connection closed mid-body"))))

(* Declared below the [result]-returning parse helpers: the [Ok]
   constructor would otherwise shadow [Stdlib.Ok] for all of them. *)
type response = Ok of string | Err of string | Busy

let render_response = function
  | Busy -> Printf.sprintf "%s BUSY\r\n" magic
  | Err msg ->
      (* One line; embedded line breaks would fabricate frames. *)
      let msg =
        String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg
      in
      Printf.sprintf "%s ERR %s\r\n" magic msg
  | Ok payload ->
      Printf.sprintf "%s OK\r\nContent-Length: %d\r\n\r\n%s" magic
        (String.length payload) payload

let recv_response ?(max_body = default_max_body) reader =
  match Spamlab_io.read_line reader ~max:max_line with
  | `Eof -> `Eof
  | `Too_long -> `Error "response line too long"
  | `Line line -> (
      let prefix p s =
        String.length s >= String.length p && String.sub s 0 (String.length p) = p
      in
      if prefix (magic ^ " ERR") line then
        let off = String.length magic + 4 in
        let msg =
          if String.length line > off + 1 then
            String.sub line (off + 1) (String.length line - off - 1)
          else ""
        in
        `Response (Err msg)
      else if line = magic ^ " BUSY" then `Response Busy
      else if line = magic ^ " OK" then (
        match Spamlab_io.read_line reader ~max:max_line with
        | `Eof | `Too_long -> `Error "truncated response headers"
        | `Line line -> (
            match split_header line with
            | Stdlib.Ok ("content-length", v) -> (
                match parse_content_length v with
                | Error e -> `Error e
                | Stdlib.Ok n when n > max_body ->
                    `Error "response body exceeds limit"
                | Stdlib.Ok n -> (
                    match Spamlab_io.read_line reader ~max:max_line with
                    | `Line "" ->
                        let buf = Bytes.create n in
                        if Spamlab_io.read_exact reader buf 0 n then
                          `Response (Ok (Bytes.unsafe_to_string buf))
                        else `Error "connection closed mid-payload"
                    | _ -> `Error "missing blank line after response headers"))
            | _ -> `Error (Printf.sprintf "unexpected response header %S" line)))
      else `Error (Printf.sprintf "malformed response line %S" line))
