(** Deterministic chaos soak harness for the daemon.

    Runs the same deterministic load schedule twice — once against a
    pristine daemon (the {e baseline}), once against a daemon with a
    seed-derived randomized fault schedule, overload limits armed and
    planned crash-kill/restart cycles — then asserts that chaos was
    fully masked:

    - every chaos client exits 0 with stdout {e byte-identical} to its
      baseline twin;
    - the surviving published database verifies, and a fresh fault-free
      daemon opens it (plus the tenant store), answers [HEALTH] with
      [state=READY] and completes a [PUBLISH];
    - the chaos daemon's verdict counters are internally consistent
      (best effort on the final boot).

    Crash clauses are confined to replay-safe sites — places where the
    process dies before any acknowledged-but-unreplayable mutation —
    so the client replay contract makes the kill invisible; the
    rationale per site is in the implementation header.

    The harness shells out to [config.exe] (normally
    [Sys.executable_name]) for every daemon and client, so each run is
    a faithful multi-process deployment, not an in-process simulation. *)

type config = {
  exe : string;  (** spamlab binary to exec for daemons and clients *)
  dir : string;  (** scratch directory (created; stale state removed) *)
  seed : int;  (** sole source of schedule randomness *)
  clients : int;  (** concurrent load-client processes *)
  users : int;
      (** tenants per client (must be [>= 1]: concurrent clients need
          disjoint tenant state for deterministic verdicts) *)
  train_size : int;
  eval_size : int;
  batch : int;
  kills : int;  (** planned crash-kill/restart cycles *)
  fault_p : float;  (** per-occurrence transient probability *)
  publish_fault_p : float;
      (** separate (higher) probability for ["serve.publish"], so the
          degraded-mode machinery actually engages *)
  jobs : int;  (** daemon worker domains *)
  wall_budget_s : float;  (** hard wall-clock cap for the whole soak *)
}

val default : exe:string -> dir:string -> seed:int -> config
(** 3 clients x 2 tenants, 48 train / 24 eval in batches of 6, 2 kills,
    2% transient / 20% publish faults, 120 s budget. *)

val run : config -> (string, string) result
(** Execute the soak.  [Ok report] ends with a ["chaos ok"] line (the
    CI grep target); [Error] pinpoints the first violated invariant and
    the scratch file holding the evidence. *)
