module Label = Spamlab_spambayes.Label
module Mbox = Spamlab_email.Mbox
module Rng = Spamlab_stats.Rng
module Trec = Spamlab_corpus.Trec
module Generator = Spamlab_corpus.Generator
module Clock = Spamlab_obs.Clock

type conn = { fd : Unix.file_descr; reader : Spamlab_io.reader }

(* Transport errors keep their errno: the backoff logic needs to
   distinguish a daemon that is down or restarting (ECONNREFUSED /
   ENOENT — wait and reconnect) from a connection torn mid-exchange
   (ECONNRESET / EPIPE — replay and retry) from a configuration
   problem (EACCES, a bad address — retrying cannot help). *)
type error = {
  context : string;
  errno : Unix.error option;
  recoverable : bool;  (** worth a reconnect-and-retry *)
}

let error_message err =
  match err.errno with
  | Some e -> Printf.sprintf "%s: %s" err.context (Unix.error_message e)
  | None -> err.context

let transport_recoverable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNABORTED | Unix.EAGAIN
  | Unix.ECONNRESET | Unix.EPIPE | Unix.ETIMEDOUT | Unix.EINTR ->
      true
  | _ -> false

let unix_error context e =
  { context; errno = Some e; recoverable = transport_recoverable e }

let torn context = { context; errno = None; recoverable = true }

let sockaddr_of = function
  | Daemon.Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Daemon.Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.PF_INET, Unix.ADDR_INET (ip, port))
      | exception Failure _ ->
          Error
            {
              context = Printf.sprintf "bad daemon address %S" host;
              errno = None;
              recoverable = false;
            })

let connect addr =
  (* A daemon crash mid-exchange turns our next write into SIGPIPE,
     which would kill the whole client process; we want the EPIPE
     errno instead, which the recovery logic knows how to absorb. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match sockaddr_of addr with
  | Error e -> Error e
  | Ok (domain, sa) -> (
      let fd = Unix.socket ~cloexec:true domain SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () -> Ok { fd; reader = Spamlab_io.reader fd }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (unix_error "connect" e))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let request conn req =
  let wire = Protocol.render_request req in
  match Spamlab_io.really_write_string conn.fd wire 0 (String.length wire) with
  | exception Unix.Unix_error (e, fn, _) -> Error (unix_error ("send " ^ fn) e)
  | exception Sys_error m -> Error (torn ("send: " ^ m))
  | () -> (
      match Protocol.recv_response conn.reader with
      | `Response r -> Ok r
      | `Eof -> Error (torn "connection closed before response")
      | `Error e -> Error (torn e)
      | exception Unix.Unix_error (e, fn, _) ->
          Error (unix_error ("recv " ^ fn) e)
      | exception Sys_error m -> Error (torn ("recv: " ^ m)))

let roundtrip addr req =
  match connect addr with
  | Error e -> Error e
  | Ok conn ->
      let r = request conn req in
      close conn;
      r

(* Hold a connection open without completing a request: connect, send
   [bytes] (e.g. half a header — or nothing), then sit silent for up to
   [hold_s].  The parasite the overload gates need: ["reaped"] when the
   daemon closes the connection first (deadline/idle reaping worked),
   ["held"] when the full hold elapsed with the connection still up. *)
let stall ~addr ~bytes ~hold_s =
  match connect addr with
  | Error e -> Error e
  | Ok conn ->
      (try
         Spamlab_io.really_write_string conn.fd bytes 0 (String.length bytes)
       with _ -> ());
      let deadline = Spamlab_io.monotonic_s () +. hold_s in
      let buf = Bytes.create 4096 in
      let rec wait () =
        let remaining = deadline -. Spamlab_io.monotonic_s () in
        if remaining <= 0.0 then "held"
        else
          match Unix.select [ conn.fd ] [] [] remaining with
          | exception Unix.Unix_error (EINTR, _, _) -> wait ()
          | [], _, _ -> "held"
          | _ -> (
              (* Readable: either the daemon's parting ERR/BUSY line
                 (keep waiting for the close itself) or EOF/reset. *)
              match Unix.read conn.fd buf 0 (Bytes.length buf) with
              | 0 -> "reaped"
              | _ -> wait ()
              | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
                  "reaped"
              | exception Unix.Unix_error (EINTR, _, _) -> wait ())
      in
      let outcome = wait () in
      close conn;
      Ok outcome

(* ------------------------------------------------------------------ *)
(* Load generation                                                     *)

type load_config = {
  addr : Daemon.addr;
  seed : int;
  clients : int;
  train_size : int;
  train_batch : int;
  eval_size : int;
  classify_batch : int;
  spam_fraction : float;
  users : int;
  user_prefix : string;
  reconnect_attempts : int;
  reconnect_delay_s : float;
}

let default_load ~addr ~seed =
  {
    addr;
    seed;
    clients = 2;
    train_size = 96;
    train_batch = 8;
    eval_size = 48;
    classify_batch = 8;
    spam_fraction = 0.5;
    users = 0;
    user_prefix = "";
    reconnect_attempts = 50;
    reconnect_delay_s = 0.2;
  }

(* Tenant for the [i]th message (or batch) of the schedule: round-robin
   over [users] fixed names, [None] in single-filter mode.  The prefix
   lets concurrent load processes address disjoint tenant sets (chaos
   runs several against one daemon and still expects deterministic
   per-process verdicts — only possible when their state is disjoint). *)
let user_of cfg i =
  if cfg.users <= 0 then None
  else Some (Printf.sprintf "%su%03d" cfg.user_prefix (i mod cfg.users))

type load_report = {
  summary : string;
  detail : string;
  trained : int;
  classified : int;
  reconnects : int;
  wall_s : float;
}

(* "pending=0" style fields out of an ack payload. *)
let ack_field payload key =
  let key = key ^ "=" in
  String.split_on_char '\n' payload
  |> List.concat_map (String.split_on_char ' ')
  |> List.find_map (fun tok ->
         if
           String.length tok > String.length key
           && String.sub tok 0 (String.length key) = key
         then
           int_of_string_opt
             (String.sub tok (String.length key)
                (String.length tok - String.length key))
         else None)

type load_state = {
  cfg : load_config;
  (* Unpublished TRAIN/UNTRAIN requests, in send order, each tagged
     with the publish seq it was acknowledged under and — for tenant
     TRAINs against a limits-armed daemon — the tenant's total message
     count after the apply ([user.msgs=] in the ack).  Items acked
     before the daemon's current seq have been incorporated by a
     publish and are dropped lazily as later acks reveal it; the
     recorded count lets a post-restart replay skip entries that a
     publish this client never observed made durable. *)
  mutable unpublished : (int * int option * Protocol.request) list;
  mutable reconnects : int;
  mutable seq : int;
  mutable busy_waits : int;  (* BUSY responses absorbed by backoff *)
  mutable degraded_waits : int;  (* DEGRADED refusals absorbed *)
  mutable restarts : int;  (* daemon restarts detected by seq regression *)
  mutable boot : int option;
      (* Daemons with limits armed stamp mutation acks with their
         process id ([boot=]).  Once seen, a changed id is the restart
         signal — exact where seq regression is blind (before the first
         publish, 0 = 0) — and transport errors stop triggering blind
         replays (a reaped or shed connection is not a state loss). *)
  mutable draws : int;  (* deterministic jitter counter *)
}

let make_load_state cfg =
  {
    cfg;
    unpublished = [];
    reconnects = 0;
    seq = 0;
    busy_waits = 0;
    degraded_waits = 0;
    restarts = 0;
    boot = None;
    draws = 0;
  }

(* splitmix64 finalizer, as in {!Spamlab_fault}: backoff jitter must be
   a pure function of (seed, draw ordinal) so a load run's sleep
   schedule — like everything else about it — replays exactly. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Jitter factor in [0.75, 1.25): desynchronizes concurrent clients
   hammering one recovering daemon without sacrificing determinism. *)
let jitter st =
  st.draws <- st.draws + 1;
  let z =
    mix64
      (Int64.add
         (Int64.of_int st.cfg.seed)
         (Int64.mul (Int64.of_int st.draws) 0x9e3779b97f4a7c15L))
  in
  0.75 +. (0.5 *. (Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53))

(* Capped exponential backoff for BUSY/DEGRADED answers.  Starts well
   under [reconnect_delay_s]: shedding clears in one select round
   (milliseconds), unlike a dead daemon. *)
let shed_backoff st attempt =
  let d = Float.min 0.5 (0.02 *. (2.0 ** float_of_int (min attempt 5))) in
  d *. jitter st

let reconnect_backoff st attempt =
  let base = st.cfg.reconnect_delay_s in
  let d = Float.min (base *. 8.0) (base *. (2.0 ** float_of_int (min attempt 3))) in
  d *. jitter st

(* After a TRAIN/UNTRAIN/PUBLISH [Ok] ack: pending = 0 means a publish
   has incorporated every unpublished request (including this one);
   otherwise stale entries (acked under an older seq that a publish
   has since passed) are dropped and this request joins the buffer.
   [Err]/[Busy] never reach here — {!send} retries them, and a TRAIN
   answered [Err] was not applied (the daemon rolls back partial
   batches), so there is nothing to buffer. *)
let note_ack st (req : Protocol.request) (resp : Protocol.response) =
  match (req.verb, resp) with
  | (Protocol.Train _ | Protocol.Untrain _), Protocol.Ok payload -> (
      (match ack_field payload "seq" with Some s -> st.seq <- s | None -> ());
      match ack_field payload "pending" with
      | Some 0 -> st.unpublished <- []
      | _ ->
          (* Zero-message requests (the replay probes below) have no
             effect to replay — never buffer them. *)
          if req.body <> "" then
            let msgs_after =
              match req.verb with
              | Protocol.Train _ -> ack_field payload "user.msgs"
              | _ -> None
            in
            st.unpublished <-
              List.filter (fun (s, _, _) -> s >= st.seq) st.unpublished
              @ [ (st.seq, msgs_after, req) ])
  | Protocol.Publish, Protocol.Ok payload ->
      (match ack_field payload "seq" with Some s -> st.seq <- s | None -> ());
      st.unpublished <- []
  | _ -> ()

let is_mutation : Protocol.verb -> bool = function
  | Protocol.Train _ | Protocol.Untrain _ -> true
  | _ -> false

let degraded_refusal msg =
  String.length msg >= 8 && String.sub msg 0 8 = "DEGRADED"

(* One logical request with full recovery:

   - transport failure → wait (errno-dependent backoff), replay the
     unpublished buffer in order, then retry;
   - [BUSY] → shed backoff and retry (the request was not executed);
   - [ERR DEGRADED] on a mutation → nudge recovery with a PUBLISH,
     back off, retry;
   - any other [ERR] → bounded retry: TRAINs are all-or-nothing on the
     daemon, every other verb is idempotent, so a fault-injected error
     is safe to re-issue (a genuinely semantic error just burns the
     small error budget before surfacing);
   - an [Ok] ack whose seq {e regressed} → the daemon restarted
     between round-trips (no transport error to trip on): the buffer
     was lost with the delta, so replay it.  The current request
     landed first on the new epoch — acceptable, because training
     effects are count-commutative and verdicts are only compared
     after the schedule's own PUBLISH.

   [tries] bounds the total recovery budget across the whole tree. *)
let rec send st tries (req : Protocol.request) =
  match roundtrip st.cfg.addr req with
  | Ok Protocol.Busy ->
      st.busy_waits <- st.busy_waits + 1;
      if tries >= st.cfg.reconnect_attempts then
        Error
          (Printf.sprintf "daemon still busy after %d attempts" tries)
      else begin
        Unix.sleepf (shed_backoff st tries);
        send st (tries + 1) req
      end
  | Ok (Protocol.Err msg) when degraded_refusal msg && is_mutation req.verb ->
      st.degraded_waits <- st.degraded_waits + 1;
      if tries >= st.cfg.reconnect_attempts then
        Error (Printf.sprintf "daemon degraded after %d attempts: %s" tries msg)
      else begin
        Unix.sleepf (shed_backoff st tries);
        (* Recovery cue: one successful publish clears degraded mode
           (and, via its ack, our buffer).  Failure is fine — the
           retried request will just find the daemon still degraded. *)
        (match
           send st (tries + 1)
             { Protocol.verb = Protocol.Publish; body = ""; user = None }
         with
        | Ok _ | Error _ -> ());
        send st (tries + 1) req
      end
  | Ok (Protocol.Err _) when tries < min st.cfg.reconnect_attempts 8 ->
      (* Transient daemon-side failure (injected fault, I/O hiccup). *)
      Unix.sleepf (shed_backoff st tries);
      send st (tries + 1) req
  | Ok resp ->
      let field key =
        match resp with
        | Protocol.Ok payload -> ack_field payload key
        | _ -> None
      in
      let acked_seq = field "seq" in
      let acked_boot = field "boot" in
      (* A changed boot id is the exact restart signal; without one
         (older daemon, or no limit armed) fall back to the seq
         regression heuristic, which is blind before the first
         publish. *)
      let restarted =
        match (acked_boot, st.boot) with
        | Some b, Some b0 when b <> b0 -> true
        | _ -> ( match acked_seq with Some s -> s < st.seq | None -> false)
      in
      (match acked_boot with Some b -> st.boot <- Some b | None -> ());
      if restarted then begin
        st.restarts <- st.restarts + 1;
        st.seq <- (match acked_seq with Some s -> s | None -> 0);
        let buffered = st.unpublished in
        st.unpublished <- [];
        note_ack st req resp;
        (* The triggering request already landed on the new boot, so
           its messages contaminate the tenant count the replay probes
           would read: a lost older batch of the same size would look
           durable and be skipped.  Its own ack tells us both the
           count after it applied and how many messages it added —
           seed the reconciliation with the difference, the durable
           count just before it landed. *)
        let seed =
          match (req.verb, req.user) with
          | Protocol.Train _, Some u when req.body <> "" -> (
              match (field "user.msgs", field "trained") with
              | Some m, Some n -> Some (u, m - n)
              | _ -> None)
          | Protocol.Untrain _, Some u when req.body <> "" -> (
              match (field "user.msgs", field "untrained") with
              | Some m, Some n -> Some (u, m + n)
              | _ -> None)
          | _ -> None
        in
        match replay_buffer st tries ?seed buffered with
        | Error _ as err -> err
        | Ok replayed ->
            (* A replay triggered by a PUBLISH ack landed {e after}
               that publish: the re-trained tokens sit outside the
               freshly frozen intern snapshot, and classification
               reads published state only.  Publish again so the
               replayed training is visible (and durable) exactly as
               it would have been without the crash. *)
            if replayed > 0 && req.verb = Protocol.Publish then
              send st (tries + 1) req
            else Ok resp
      end
      else begin
        note_ack st req resp;
        Ok resp
      end
  | Error err ->
      if (not err.recoverable) || tries >= st.cfg.reconnect_attempts then
        Error
          (Printf.sprintf "%s (after %d attempts)" (error_message err) tries)
      else if st.boot <> None then begin
        (* The daemon stamps acks with its boot id, so a torn
           connection alone is not evidence of state loss — it may be
           deadline reaping or admission shedding, where a blind replay
           would double-train.  Just retry: if the daemon really did
           restart, the next ack's boot change triggers the replay,
           exactly once. *)
        st.reconnects <- st.reconnects + 1;
        Unix.sleepf (reconnect_backoff st tries);
        send st (tries + 1) req
      end
      else begin
        st.reconnects <- st.reconnects + 1;
        Unix.sleepf (reconnect_backoff st tries);
        let buffered = List.map (fun (_, _, r) -> r) st.unpublished in
        st.unpublished <- [];
        let rec replay = function
          | [] -> send st (tries + 1) req
          | r :: rest -> (
              match send st (tries + 1) r with
              | Ok _ -> replay rest
              | Error _ as e ->
                  (* Keep what was not replayed for the next attempt. *)
                  st.unpublished <-
                    st.unpublished
                    @ List.map (fun r -> (st.seq, None, r)) (r :: rest);
                  e)
        in
        replay buffered
      end

(* Replay after an {e observed} restart (boot change / seq regression):
   reconcile against the survivor instead of re-sending blindly.  A
   buffered tenant TRAIN may already be durable — a publish commits
   {e every} client's journaled ops, and only the publishing client's
   ack says so — and re-training it would double-apply.  Tenant TRAIN
   acks carry [user.msgs=], the tenant's total message count, which
   lives in the store segments and therefore survives exactly as far
   as the training itself did.  A zero-message probe TRAIN reveals the
   restarted daemon's count: buffered entries at or below it are
   durable and skipped (but kept buffered — if this boot also dies
   unpublished, the next boot's probe decides again); entries above it
   were lost and are re-sent.  The test is exact because each tenant
   is written by one client: per tenant, what survives a crash is a
   prefix of the dead boot's journal order, and the buffered counts
   are cumulative positions in that same order.  Entries without a
   recorded count (no tenant, UNTRAIN, unarmed daemon) replay blindly
   as before.

   The probe cache holds each tenant's durable count {e at replay
   start} and is never advanced by our own resends (they open a new
   journal order the old positions do not map into).  It is valid for
   one boot only: any nested restart (visible as [st.restarts] moving
   inside a [send]) resets it — a count probed from a dead boot must
   never justify a skip.  Returns the number of entries actually
   re-sent. *)
and replay_buffer st tries ?seed entries =
  let probed : (string, int) Hashtbl.t = Hashtbl.create 4 in
  (match seed with Some (u, m) -> Hashtbl.replace probed u m | None -> ());
  let epoch = ref st.restarts in
  let fresh () =
    if !epoch <> st.restarts then begin
      Hashtbl.reset probed;
      epoch := st.restarts
    end
  in
  let current_msgs user =
    fresh ();
    match Hashtbl.find_opt probed user with
    | Some m -> Ok m
    | None -> (
        match
          send st (tries + 1)
            { Protocol.verb = Protocol.Train Label.Ham; body = ""; user = Some user }
        with
        | Ok (Protocol.Ok payload) ->
            (* [min_int] when the field is missing: skip nothing. *)
            let m = Option.value ~default:min_int (ack_field payload "user.msgs") in
            fresh ();
            Hashtbl.replace probed user m;
            Ok m
        | Ok (Protocol.Err e) -> Error ("replay probe: " ^ e)
        | Ok Protocol.Busy -> Error "replay probe: busy (retries exhausted)"
        | Error _ as err -> err)
  in
  let rec go resent = function
    | [] -> Ok resent
    | ((_, msgs_after, (req : Protocol.request)) as entry) :: rest -> (
        let skip =
          match (msgs_after, req.user) with
          | Some m, Some u -> (
              match current_msgs u with
              | Ok cur -> Ok (m <= cur)
              | Error e -> Error e)
          | _ -> Ok false
        in
        match skip with
        | Error e -> Error e
        | Ok true ->
            st.unpublished <- st.unpublished @ [ entry ];
            go resent rest
        | Ok false -> (
            (* Never fold a resent entry's ack back into the cache:
               the cache must stay the tenant's durable count {e at
               replay start}.  Our own resends land in a {e new}
               journal order, so a later buffered entry (say, a
               rebuffered trigger from the previous boot with a small
               journal-position count) would compare against the
               inflated count and be skipped as durable when it was
               never resent at all. *)
            match send st (tries + 1) req with
            | Ok (Protocol.Ok _) -> go (resent + 1) rest
            | Ok (Protocol.Err e) -> Error ("replay after daemon restart: " ^ e)
            | Ok Protocol.Busy ->
                Error "replay after daemon restart: busy (retries exhausted)"
            | Error _ as err -> err))
  in
  go 0 entries

let send st req = send st 0 req

(* Single-label TRAIN batches over a shuffled corpus, in encounter
   order: a batch flushes when it reaches [train_batch] messages.
   With [users > 0], messages are dealt round-robin to tenants and
   batches are keyed (tenant, label); leftover flushes run in sorted
   key order, which for [users = 0] reduces to the historical ham-
   then-spam order (the PR 7 wire schedule, byte for byte). *)
let train_requests cfg (corpus : Trec.labeled array) =
  let reqs = ref [] in
  let buckets = Hashtbl.create 16 in
  let bucket key =
    match Hashtbl.find_opt buckets key with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add buckets key b;
        b
  in
  let flush ((user, cls) as key) =
    let b = bucket key in
    if !b <> [] then begin
      let body = Mbox.print (List.rev !b) in
      b := [];
      reqs := { Protocol.verb = Protocol.Train cls; body; user } :: !reqs
    end
  in
  Array.iteri
    (fun i (label, msg) ->
      let key = (user_of cfg i, label) in
      let b = bucket key in
      b := msg :: !b;
      if List.length !b >= cfg.train_batch then flush key)
    corpus;
  Hashtbl.fold (fun k _ acc -> k :: acc) buckets []
  |> List.sort compare
  |> List.iter flush;
  List.rev !reqs

let classify_requests cfg (eval : Trec.labeled array) =
  let msgs = Array.to_list (Array.map snd eval) in
  let rec batches bi acc = function
    | [] -> List.rev acc
    | l ->
        let rec take n acc = function
          | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let batch, rest = take cfg.classify_batch [] l in
        batches (bi + 1)
          ({
             Protocol.verb = Protocol.Classify;
             body = Mbox.print batch;
             user = user_of cfg bi;
           }
          :: acc)
          rest
  in
  batches 0 [] msgs

let load cfg =
  let t0 = Clock.now_ns () in
  let rng = Rng.create cfg.seed in
  let gen = Generator.default_config ~seed:cfg.seed () in
  let corpus =
    Trec.generate gen (Rng.split_named rng "serve.train") ~size:cfg.train_size
      ~spam_fraction:cfg.spam_fraction
  in
  let eval =
    Trec.generate gen (Rng.split_named rng "serve.eval") ~size:cfg.eval_size
      ~spam_fraction:cfg.spam_fraction
  in
  let st = make_load_state cfg in
  let summary = Buffer.create 1024 in
  let exception Fail of string in
  let must req =
    match send st req with
    | Ok resp -> resp
    | Error e -> raise (Fail e)
  in
  try
    (* Opening PING per logical client. *)
    let pings = ref 0 in
    for _ = 1 to max 1 cfg.clients do
      match must { Protocol.verb = Protocol.Ping; body = ""; user = None } with
      | Protocol.Ok _ -> incr pings
      | Protocol.Err e -> raise (Fail ("ping: " ^ e))
      | Protocol.Busy -> raise (Fail "ping: busy (retries exhausted)")
    done;
    Buffer.add_string summary (Printf.sprintf "ping ok=%d\n" !pings);
    (* Train. *)
    let train_reqs = train_requests cfg corpus in
    let trained = ref 0 and train_malformed = ref 0 in
    List.iter
      (fun req ->
        match must req with
        | Protocol.Ok payload ->
            trained := !trained + Option.value ~default:0 (ack_field payload "trained");
            train_malformed :=
              !train_malformed + Option.value ~default:0 (ack_field payload "malformed")
        | Protocol.Err e -> raise (Fail ("train: " ^ e))
        | Protocol.Busy -> raise (Fail "train: busy (retries exhausted)"))
      train_reqs;
    Buffer.add_string summary
      (Printf.sprintf "train requests=%d messages=%d malformed=%d\n"
         (List.length train_reqs) !trained !train_malformed);
    (* Publish everything before evaluating. *)
    (match must { Protocol.verb = Protocol.Publish; body = ""; user = None } with
    | Protocol.Ok _ -> ()
    | Protocol.Err e -> raise (Fail ("publish: " ^ e))
    | Protocol.Busy -> raise (Fail "publish: busy (retries exhausted)"));
    (* Classify the held-out corpus. *)
    let classify_reqs = classify_requests cfg eval in
    let verdicts = Buffer.create 1024 in
    let classified = ref 0 and cls_malformed = ref 0 in
    let ham = ref 0 and unsure = ref 0 and spam = ref 0 in
    List.iteri
      (fun bi req ->
        match must req with
        | Protocol.Err e -> raise (Fail ("classify: " ^ e))
        | Protocol.Busy -> raise (Fail "classify: busy (retries exhausted)")
        | Protocol.Ok payload ->
            String.split_on_char '\n' payload
            |> List.iter (fun line ->
                   if line <> "" then begin
                     Buffer.add_string verdicts
                       (Printf.sprintf "batch=%d %s\n" bi line);
                     match String.split_on_char ' ' line with
                     | [ _; "malformed" ] -> incr cls_malformed
                     | _ :: v :: _ ->
                         incr classified;
                         if v = "ham" then incr ham
                         else if v = "unsure" then incr unsure
                         else if v = "spam" then incr spam
                     | _ -> ()
                   end))
      classify_reqs;
    Buffer.add_string summary
      (Printf.sprintf
         "classify requests=%d messages=%d ham=%d unsure=%d spam=%d malformed=%d\n"
         (List.length classify_reqs) !classified !ham !unsure !spam !cls_malformed);
    Buffer.add_buffer summary verdicts;
    let stats_detail =
      match must { Protocol.verb = Protocol.Stats; body = ""; user = None } with
      | Protocol.Ok payload -> payload
      | Protocol.Err e -> "stats error: " ^ e ^ "\n"
      | Protocol.Busy -> "stats error: busy\n"
    in
    let wall_s =
      Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e9
    in
    let detail =
      Printf.sprintf
        "reconnects=%d busy=%d degraded=%d restarts=%d publish.seq=%d \
         wall_s=%.3f\n\
         --- stats ---\n\
         %s"
        st.reconnects st.busy_waits st.degraded_waits st.restarts st.seq wall_s
        stats_detail
    in
    Ok
      {
        summary = Buffer.contents summary;
        detail;
        trained = !trained;
        classified = !classified;
        reconnects = st.reconnects;
        wall_s;
      }
  with Fail e -> Error e
