module Label = Spamlab_spambayes.Label
module Mbox = Spamlab_email.Mbox
module Rng = Spamlab_stats.Rng
module Trec = Spamlab_corpus.Trec
module Generator = Spamlab_corpus.Generator
module Clock = Spamlab_obs.Clock

type conn = { fd : Unix.file_descr; reader : Spamlab_io.reader }

let sockaddr_of = function
  | Daemon.Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Daemon.Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (Unix.PF_INET, Unix.ADDR_INET (ip, port))
      | exception Failure _ ->
          Error (Printf.sprintf "bad daemon address %S" host))

let connect addr =
  match sockaddr_of addr with
  | Error e -> Error e
  | Ok (domain, sa) -> (
      let fd = Unix.socket ~cloexec:true domain SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () -> Ok { fd; reader = Spamlab_io.reader fd }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message e))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let request conn req =
  let wire = Protocol.render_request req in
  match Spamlab_io.really_write_string conn.fd wire 0 (String.length wire) with
  | exception (Unix.Unix_error _ | Sys_error _) -> Error "connection lost"
  | () -> (
      match Protocol.recv_response conn.reader with
      | `Response r -> Ok r
      | `Eof -> Error "connection closed before response"
      | `Error e -> Error e)

let roundtrip addr req =
  match connect addr with
  | Error e -> Error e
  | Ok conn ->
      let r = request conn req in
      close conn;
      r

(* ------------------------------------------------------------------ *)
(* Load generation                                                     *)

type load_config = {
  addr : Daemon.addr;
  seed : int;
  clients : int;
  train_size : int;
  train_batch : int;
  eval_size : int;
  classify_batch : int;
  spam_fraction : float;
  users : int;
  reconnect_attempts : int;
  reconnect_delay_s : float;
}

let default_load ~addr ~seed =
  {
    addr;
    seed;
    clients = 2;
    train_size = 96;
    train_batch = 8;
    eval_size = 48;
    classify_batch = 8;
    spam_fraction = 0.5;
    users = 0;
    reconnect_attempts = 50;
    reconnect_delay_s = 0.2;
  }

(* Tenant for the [i]th message (or batch) of the schedule: round-robin
   over [users] fixed names, [None] in single-filter mode. *)
let user_of cfg i =
  if cfg.users <= 0 then None else Some (Printf.sprintf "u%03d" (i mod cfg.users))

type load_report = {
  summary : string;
  detail : string;
  trained : int;
  classified : int;
  reconnects : int;
  wall_s : float;
}

(* "pending=0" style fields out of an ack payload. *)
let ack_field payload key =
  let key = key ^ "=" in
  String.split_on_char '\n' payload
  |> List.concat_map (String.split_on_char ' ')
  |> List.find_map (fun tok ->
         if
           String.length tok > String.length key
           && String.sub tok 0 (String.length key) = key
         then
           int_of_string_opt
             (String.sub tok (String.length key)
                (String.length tok - String.length key))
         else None)

type load_state = {
  cfg : load_config;
  mutable unpublished : Protocol.request list;  (* send order *)
  mutable reconnects : int;
  mutable seq : int;
}

(* After a TRAIN/UNTRAIN/PUBLISH ack: pending = 0 means a publish has
   incorporated every unpublished request (including this one). *)
let note_ack st (req : Protocol.request) (resp : Protocol.response) =
  match (req.verb, resp) with
  | (Protocol.Train _ | Protocol.Untrain _), Protocol.Ok payload -> (
      (match ack_field payload "seq" with Some s -> st.seq <- s | None -> ());
      match ack_field payload "pending" with
      | Some 0 -> st.unpublished <- []
      | _ -> st.unpublished <- st.unpublished @ [ req ])
  | (Protocol.Train _ | Protocol.Untrain _), Protocol.Err _ ->
      (* Applied to the delta but publish (or the ack) failed: still
         unpublished from our point of view. *)
      st.unpublished <- st.unpublished @ [ req ]
  | Protocol.Publish, Protocol.Ok payload ->
      (match ack_field payload "seq" with Some s -> st.seq <- s | None -> ());
      st.unpublished <- []
  | _ -> ()

(* One logical request with transport-failure recovery: on failure,
   wait, replay the unpublished buffer in order, then retry.  [tries]
   bounds the total reconnect budget across the recovery tree. *)
let rec send st tries (req : Protocol.request) =
  match roundtrip st.cfg.addr req with
  | Ok resp ->
      note_ack st req resp;
      Ok resp
  | Error e ->
      if tries >= st.cfg.reconnect_attempts then
        Error (Printf.sprintf "%s (after %d reconnect attempts)" e tries)
      else begin
        st.reconnects <- st.reconnects + 1;
        Unix.sleepf st.cfg.reconnect_delay_s;
        let buffered = st.unpublished in
        st.unpublished <- [];
        let rec replay = function
          | [] -> send st (tries + 1) req
          | r :: rest -> (
              match send st (tries + 1) r with
              | Ok _ -> replay rest
              | Error _ as err ->
                  (* Keep what was not replayed for the next attempt. *)
                  st.unpublished <- st.unpublished @ (r :: rest);
                  err)
        in
        replay buffered
      end

let send st req = send st 0 req

(* Single-label TRAIN batches over a shuffled corpus, in encounter
   order: a batch flushes when it reaches [train_batch] messages.
   With [users > 0], messages are dealt round-robin to tenants and
   batches are keyed (tenant, label); leftover flushes run in sorted
   key order, which for [users = 0] reduces to the historical ham-
   then-spam order (the PR 7 wire schedule, byte for byte). *)
let train_requests cfg (corpus : Trec.labeled array) =
  let reqs = ref [] in
  let buckets = Hashtbl.create 16 in
  let bucket key =
    match Hashtbl.find_opt buckets key with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add buckets key b;
        b
  in
  let flush ((user, cls) as key) =
    let b = bucket key in
    if !b <> [] then begin
      let body = Mbox.print (List.rev !b) in
      b := [];
      reqs := { Protocol.verb = Protocol.Train cls; body; user } :: !reqs
    end
  in
  Array.iteri
    (fun i (label, msg) ->
      let key = (user_of cfg i, label) in
      let b = bucket key in
      b := msg :: !b;
      if List.length !b >= cfg.train_batch then flush key)
    corpus;
  Hashtbl.fold (fun k _ acc -> k :: acc) buckets []
  |> List.sort compare
  |> List.iter flush;
  List.rev !reqs

let classify_requests cfg (eval : Trec.labeled array) =
  let msgs = Array.to_list (Array.map snd eval) in
  let rec batches bi acc = function
    | [] -> List.rev acc
    | l ->
        let rec take n acc = function
          | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let batch, rest = take cfg.classify_batch [] l in
        batches (bi + 1)
          ({
             Protocol.verb = Protocol.Classify;
             body = Mbox.print batch;
             user = user_of cfg bi;
           }
          :: acc)
          rest
  in
  batches 0 [] msgs

let load cfg =
  let t0 = Clock.now_ns () in
  let rng = Rng.create cfg.seed in
  let gen = Generator.default_config ~seed:cfg.seed () in
  let corpus =
    Trec.generate gen (Rng.split_named rng "serve.train") ~size:cfg.train_size
      ~spam_fraction:cfg.spam_fraction
  in
  let eval =
    Trec.generate gen (Rng.split_named rng "serve.eval") ~size:cfg.eval_size
      ~spam_fraction:cfg.spam_fraction
  in
  let st = { cfg; unpublished = []; reconnects = 0; seq = 0 } in
  let summary = Buffer.create 1024 in
  let exception Fail of string in
  let must req =
    match send st req with
    | Ok resp -> resp
    | Error e -> raise (Fail e)
  in
  try
    (* Opening PING per logical client. *)
    let pings = ref 0 in
    for _ = 1 to max 1 cfg.clients do
      match must { Protocol.verb = Protocol.Ping; body = ""; user = None } with
      | Protocol.Ok _ -> incr pings
      | Protocol.Err e -> raise (Fail ("ping: " ^ e))
    done;
    Buffer.add_string summary (Printf.sprintf "ping ok=%d\n" !pings);
    (* Train. *)
    let train_reqs = train_requests cfg corpus in
    let trained = ref 0 and train_malformed = ref 0 in
    List.iter
      (fun req ->
        match must req with
        | Protocol.Ok payload ->
            trained := !trained + Option.value ~default:0 (ack_field payload "trained");
            train_malformed :=
              !train_malformed + Option.value ~default:0 (ack_field payload "malformed")
        | Protocol.Err e -> raise (Fail ("train: " ^ e)))
      train_reqs;
    Buffer.add_string summary
      (Printf.sprintf "train requests=%d messages=%d malformed=%d\n"
         (List.length train_reqs) !trained !train_malformed);
    (* Publish everything before evaluating. *)
    (match must { Protocol.verb = Protocol.Publish; body = ""; user = None } with
    | Protocol.Ok _ -> ()
    | Protocol.Err e -> raise (Fail ("publish: " ^ e)));
    (* Classify the held-out corpus. *)
    let classify_reqs = classify_requests cfg eval in
    let verdicts = Buffer.create 1024 in
    let classified = ref 0 and cls_malformed = ref 0 in
    let ham = ref 0 and unsure = ref 0 and spam = ref 0 in
    List.iteri
      (fun bi req ->
        match must req with
        | Protocol.Err e -> raise (Fail ("classify: " ^ e))
        | Protocol.Ok payload ->
            String.split_on_char '\n' payload
            |> List.iter (fun line ->
                   if line <> "" then begin
                     Buffer.add_string verdicts
                       (Printf.sprintf "batch=%d %s\n" bi line);
                     match String.split_on_char ' ' line with
                     | [ _; "malformed" ] -> incr cls_malformed
                     | _ :: v :: _ ->
                         incr classified;
                         if v = "ham" then incr ham
                         else if v = "unsure" then incr unsure
                         else if v = "spam" then incr spam
                     | _ -> ()
                   end))
      classify_reqs;
    Buffer.add_string summary
      (Printf.sprintf
         "classify requests=%d messages=%d ham=%d unsure=%d spam=%d malformed=%d\n"
         (List.length classify_reqs) !classified !ham !unsure !spam !cls_malformed);
    Buffer.add_buffer summary verdicts;
    let stats_detail =
      match must { Protocol.verb = Protocol.Stats; body = ""; user = None } with
      | Protocol.Ok payload -> payload
      | Protocol.Err e -> "stats error: " ^ e ^ "\n"
    in
    let wall_s =
      Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e9
    in
    let detail =
      Printf.sprintf "reconnects=%d publish.seq=%d wall_s=%.3f\n--- stats ---\n%s"
        st.reconnects st.seq wall_s stats_detail
    in
    Ok
      {
        summary = Buffer.contents summary;
        detail;
        trained = !trained;
        classified = !classified;
        reconnects = st.reconnects;
        wall_s;
      }
  with Fail e -> Error e
