(** The spamlab wire protocol — a spamc/spamd-style line protocol with
    [Content-Length]-prefixed mbox bodies.

    {2 Grammar}

    {v
    request    = verb-line *header CRLF body
    verb-line  = verb SP "SPAMLAB/1.0" CRLF
    verb       = "PING" | "STATS" | "PUBLISH"
               | "CLASSIFY" | "TRAIN" | "UNTRAIN" | "HEALTH"
    header     = "Content-Length: " 1*DIGIT CRLF
               | "Message-Class: " ("ham" | "spam") CRLF
               | "User: " 1*VCHAR CRLF
    body       = Content-Length bytes of raw mbox

    response   = "SPAMLAB/1.0 OK" CRLF
                 "Content-Length: " 1*DIGIT CRLF CRLF payload
               | "SPAMLAB/1.0 ERR " message CRLF
               | "SPAMLAB/1.0 BUSY" CRLF
    v}

    Lines may be terminated CRLF or bare LF (a trailing CR is
    stripped).  [CLASSIFY]/[TRAIN]/[UNTRAIN] require [Content-Length]
    (0 is legal); [TRAIN]/[UNTRAIN] require [Message-Class]; [PING],
    [STATS], [PUBLISH] and [HEALTH] carry no body.  An [ERR] response
    has no body and the daemon closes the connection after a {e
    framing} error (the stream cannot be resynchronized); request-level
    errors (e.g. an impossible UNTRAIN) also answer [ERR] but leave the
    connection open.  [BUSY] is load shedding, not an error: the
    request was {e not} executed and may be retried after a backoff —
    an overloaded daemon answers it either at admission (the connection
    is closed after the line) or per-request (the connection stays
    open).  [HEALTH] answers an [OK] payload of one line,
    [state=READY|DEGRADED|DRAINING] plus transition counters.
    Requests may be pipelined. *)

type verb =
  | Ping
  | Stats
  | Publish
  | Classify
  | Train of Spamlab_spambayes.Label.gold
  | Untrain of Spamlab_spambayes.Label.gold
  | Health

type request = {
  verb : verb;
  body : string;
  user : string option;
      (** spamc-style tenant routing: [CLASSIFY]/[TRAIN]/[UNTRAIN]
          carrying a [User] header address that user's per-tenant Bayes
          state when the daemon runs a multi-tenant store; without the
          header (or without a store) they address the shared
          single-filter state.  An empty value is a framing error. *)
}

type response =
  | Ok of string  (** payload *)
  | Err of string
  | Busy
      (** Load shed: the request was not executed; retry after backoff. *)

val verb_name : verb -> string
(** The wire verb only (["TRAIN"], not its message class). *)

val default_max_body : int
(** Default cap on [Content-Length] — 16 MiB.  A declared length above
    the cap is a framing error before any body byte is read, so an
    attacker cannot make the daemon allocate unboundedly. *)

val max_line : int
(** Cap on any protocol line (verb or header) — 1 KiB. *)

val render_request : request -> string
(** Wire bytes of a request (CRLF line endings). *)

val render_response : response -> string

(** {1 Framed receive} *)

val recv_request :
  ?max_body:int ->
  Spamlab_io.reader ->
  [ `Request of request | `Eof | `Error of string ]
(** Read one request off the wire.  [`Eof] is a clean close at a frame
    boundary; [`Error] is a framing violation (malformed verb line or
    header, [Content-Length] missing/overflowing/over the cap, torn
    body, missing blank line) — one line of explanation, after which
    the caller should answer [Err] and close. *)

val recv_response :
  ?max_body:int ->
  Spamlab_io.reader ->
  [ `Response of response | `Eof | `Error of string ]
(** Client side: read one response.  [`Eof] before any byte means the
    peer closed (e.g. it was killed mid-request). *)

val parse_content_length : string -> (int, string) result
(** Strict decimal parse with overflow detection — ["18446744073709551616"]
    is an error, not a wrapped negative.  Exposed for the framing fuzz
    suite. *)
