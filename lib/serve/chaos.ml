(* Deterministic chaos soak: one daemon plus N load clients under a
   seed-derived randomized fault schedule, with planned crash-kills and
   restarts, followed by an invariant sweep.

   The experiment runs twice over disjoint scratch state:

   - BASELINE — a pristine daemon (no faults, no limits), the clients
     run sequentially and their stdout is captured;
   - CHAOS — a daemon with transient faults over every eligible site,
     overload limits armed, and per-epoch crash faults that kill it at
     a replay-safe site; the monitor restarts it with the next epoch's
     schedule while the same clients run concurrently.

   Invariants asserted at the end:

   - every chaos client exits 0 with stdout byte-identical to its
     baseline twin (replay + backoff fully masked the faults);
   - the published database verifies ({!Token_db.verify_string});
   - a fresh fault-free daemon opens the surviving db + tenant store,
     answers [HEALTH] with [state=READY] and completes a [PUBLISH];
   - the chaos daemon's verdict counters are internally consistent
     (best effort — the final boot may have served no classify).

   Every random choice is a pure function of [config.seed], so a
   failing run replays exactly.

   Which sites may carry a {e crash} clause is a correctness argument,
   not a preference: a kill is only replay-safe where the process dies
   {e before} any acked-but-unreplayable mutation.  [serve.accept] and
   [serve.read] fire before the request executes; [serve.publish] sits
   at the head of a publish, before the store commit or the db save;
   [store.journal.append] fires before the op record is buffered (and
   uncommitted records live in memory only, so the unacked tail dies
   with the process).  [serve.write] is excluded — a crash there tears
   the response {e after} the mutation applied, and a replaying client
   would double-train; the db.save sites are excluded for their
   post-commit ambiguity window.

   Transient clauses likewise skip the sites whose mid-flight failure
   is not all-or-nothing on the shared filter ([intern.grow] can fail
   between messages of a shared TRAIN batch, which has no rollback) and
   the save internals (a torn save surfaces as a publish failure via
   [serve.publish] already). *)

module Fault = Spamlab_fault
module Token_db = Spamlab_spambayes.Token_db

type config = {
  exe : string;
  dir : string;
  seed : int;
  clients : int;
  users : int;
  train_size : int;
  eval_size : int;
  batch : int;
  kills : int;
  fault_p : float;
  publish_fault_p : float;
  jobs : int;
  wall_budget_s : float;
}

let default ~exe ~dir ~seed =
  {
    exe;
    dir;
    seed;
    clients = 3;
    users = 2;
    train_size = 48;
    eval_size = 24;
    batch = 6;
    kills = 2;
    fault_p = 0.02;
    publish_fault_p = 0.2;
    jobs = 1;
    wall_budget_s = 120.0;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic schedule derivation (splitmix64, as everywhere else)  *)

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw cfg salt =
  let z =
    mix64
      (Int64.add
         (Int64.of_int cfg.seed)
         (Int64.mul (Int64.of_int (salt + 1)) 0x9e3779b97f4a7c15L))
  in
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

let draw_int cfg salt ~lo ~hi =
  lo + int_of_float (draw cfg salt *. float_of_int (hi - lo + 1))

(* Sites that may NOT carry a transient clause (see header). *)
let transient_excluded =
  [
    "checkpoint.record"; "db.save.rename"; "db.save.write"; "intern.grow";
    "serve.publish" (* armed separately, at [publish_fault_p] *);
  ]

let transient_sites () =
  List.filter_map
    (fun (name, _) ->
      if List.mem name transient_excluded then None else Some name)
    Fault.known_sites

(* Replay-safe kill sites with plausible occurrence ranges (see
   header for why only these four). *)
let crash_sites =
  [
    ("serve.accept", 2, 40);
    ("serve.read", 10, 300);
    ("serve.publish", 1, 3);
    ("store.journal.append", 5, 100);
  ]

(* The fault spec a given daemon epoch starts with: transient clauses
   over every eligible site, a publish-failure clause (feeding the
   degraded-mode machinery), and — while planned kills remain — one
   crash clause at a replay-safe site.  The spec grammar rejects
   duplicate sites, so the crash site drops its transient clause. *)
let spec_for cfg ~epoch =
  let crash =
    if epoch < cfg.kills then
      let n = List.length crash_sites in
      let site, lo, hi =
        List.nth crash_sites (draw_int cfg ((2 * epoch) + 7001) ~lo:0 ~hi:(n - 1))
      in
      Some (site, draw_int cfg ((2 * epoch) + 7002) ~lo ~hi)
    else None
  in
  let crash_site = Option.map fst crash in
  let transient =
    if cfg.fault_p <= 0.0 then []
    else
      transient_sites ()
      |> List.filter (fun s -> Some s <> crash_site)
      |> List.map (fun s -> Printf.sprintf "%s:transient~%g" s cfg.fault_p)
  in
  let publish =
    if cfg.publish_fault_p <= 0.0 || crash_site = Some "serve.publish" then []
    else
      [ Printf.sprintf "serve.publish:transient~%g" cfg.publish_fault_p ]
  in
  let crash_clause =
    match crash with
    | None -> []
    | Some (site, occ) -> [ Printf.sprintf "%s:crash@%d" site occ ]
  in
  String.concat "," (transient @ publish @ crash_clause)

(* ------------------------------------------------------------------ *)
(* Subprocess plumbing                                                 *)

let status_str = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

let read_file p =
  try In_channel.with_open_bin p In_channel.input_all with Sys_error _ -> ""

let has_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let rec rm_rf p =
  match Unix.lstat p with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { Unix.st_kind = S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      (try Unix.rmdir p with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink p with Unix.Unix_error _ -> ())

(* Client stdout is the byte-compared artifact; stderr (timing detail,
   reconnect counts, logs) goes to its own file.  Daemon stderr is
   opened O_APPEND so every epoch of one run lands in one log. *)
let spawn argv ~out ~err =
  let devnull = Unix.openfile "/dev/null" [ O_RDONLY ] 0 in
  let fd_out = Unix.openfile out [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let fd_err = Unix.openfile err [ O_WRONLY; O_CREAT; O_APPEND ] 0o644 in
  let pid = Unix.create_process argv.(0) argv devnull fd_out fd_err in
  Unix.close devnull;
  Unix.close fd_out;
  Unix.close fd_err;
  pid

let ( let* ) = Result.bind

let run cfg =
  if cfg.users <= 0 then
    Error
      "chaos needs --users >= 1: concurrent clients must own disjoint \
       tenants for their verdict streams to be deterministic"
  else if cfg.clients <= 0 then Error "chaos needs --clients >= 1"
  else begin
    (try Unix.mkdir cfg.dir 0o755
     with Unix.Unix_error (EEXIST, _, _) -> ());
    let path name = Filename.concat cfg.dir name in
    (* Stale state from a previous run would desynchronize the two
       phases (they must start from identical — empty — filters). *)
    List.iter
      (fun tag ->
        rm_rf (path (tag ^ ".db"));
        rm_rf (path (tag ^ ".sock"));
        rm_rf (path (tag ^ ".store")))
      [ "base"; "chaos" ];
    rm_rf (path "verify.sock");
    let t0 = Spamlab_io.monotonic_s () in
    let deadline = t0 +. cfg.wall_budget_s in
    let report = Buffer.create 512 in
    (* Everything spawned, so an invariant failure cannot leak a live
       daemon into the caller's session. *)
    let tracked = ref [] in
    let spawn_tracked argv ~out ~err =
      let pid = spawn argv ~out ~err in
      tracked := pid :: !tracked;
      pid
    in
    let reap_stragglers () =
      List.iter
        (fun pid ->
          match Unix.waitpid [ WNOHANG ] pid with
          | 0, _ ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
          | _ -> ()
          | exception Unix.Unix_error _ -> ())
        !tracked
    in
    let daemon_argv ~tag ~spec ~limits_on =
      let base =
        [
          cfg.exe; "serve"; "--seed";
          string_of_int (cfg.seed + 1);
          "--db"; path (tag ^ ".db");
          "--socket"; path (tag ^ ".sock");
          "--store-dir"; path (tag ^ ".store");
          "--jobs"; string_of_int cfg.jobs;
        ]
      in
      let lim =
        if limits_on then
          [
            "--timeout-read"; "2";
            "--timeout-idle"; "10";
            "--max-conns"; string_of_int (max 2 (cfg.clients - 1));
            "--max-inflight"; "1";
            "--degraded-after"; "2";
          ]
        else []
      in
      let fault = match spec with None -> [] | Some s -> [ "--fault-spec"; s ] in
      Array.of_list (base @ lim @ fault)
    in
    let client_argv ~tag i =
      Array.of_list
        [
          cfg.exe; "client"; "load";
          "--socket"; path (tag ^ ".sock");
          "--seed"; string_of_int (cfg.seed + 100 + i);
          "--clients"; "1";
          "--train-size"; string_of_int cfg.train_size;
          "--eval-size"; string_of_int cfg.eval_size;
          "--batch"; string_of_int cfg.batch;
          "--users"; string_of_int cfg.users;
          "--user-prefix"; Printf.sprintf "c%d-" i;
        ]
    in
    let client_out tag i = path (Printf.sprintf "%s-client-%d.out" tag i) in
    let client_err tag i = path (Printf.sprintf "%s-client-%d.err" tag i) in
    let addr tag = Daemon.Unix_sock (path (tag ^ ".sock")) in
    let oneshot tag verb =
      Client.roundtrip (addr tag) { Protocol.verb; body = ""; user = None }
    in
    let ping tag =
      match oneshot tag Protocol.Ping with Ok (Protocol.Ok _) -> true | _ -> false
    in
    (* Readiness: a completed PING round-trip, never a sleep — the same
       contract ci.sh's wait_ready helper uses.  [poll] lets the chaos
       phase restart a crash-killed daemon while we wait. *)
    let rec wait_ready ~tag ~poll =
      if Spamlab_io.monotonic_s () > deadline then
        Error
          (Printf.sprintf "chaos: wall budget exceeded waiting for %s daemon"
             tag)
      else
        let* () = poll () in
        if ping tag then Ok ()
        else begin
          Unix.sleepf 0.02;
          wait_ready ~tag ~poll
        end
    in
    let rec terminate ~what ~accept_crash pid =
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error (ESRCH, _, _) -> ());
      if Spamlab_io.monotonic_s () > deadline then
        Error (Printf.sprintf "chaos: %s did not exit within the wall budget" what)
      else
        match Unix.waitpid [ WNOHANG ] pid with
        | 0, _ ->
            Unix.sleepf 0.02;
            terminate ~what ~accept_crash pid
        | _, WEXITED 0 -> Ok ()
        | _, WEXITED 70 when accept_crash -> Ok ()
        | _, st ->
            Error (Printf.sprintf "chaos: %s exited badly: %s" what (status_str st))
    in
    (* ---------------- phase 1: baseline ---------------- *)
    let baseline () =
      let dpid =
        spawn_tracked
          (daemon_argv ~tag:"base" ~spec:None ~limits_on:false)
          ~out:(path "base-daemon.out") ~err:(path "base-daemon.err")
      in
      let poll () =
        match Unix.waitpid [ WNOHANG ] dpid with
        | 0, _ -> Ok ()
        | _, st ->
            Error
              (Printf.sprintf "chaos: baseline daemon died: %s (see %s)"
                 (status_str st) (path "base-daemon.err"))
      in
      let* () = wait_ready ~tag:"base" ~poll in
      let rec clients i =
        if i >= cfg.clients then Ok ()
        else begin
          let cpid =
            spawn_tracked (client_argv ~tag:"base" i)
              ~out:(client_out "base" i) ~err:(client_err "base" i)
          in
          let rec wait () =
            if Spamlab_io.monotonic_s () > deadline then
              Error "chaos: wall budget exceeded during the baseline run"
            else
              match Unix.waitpid [ WNOHANG ] cpid with
              | 0, _ ->
                  let* () = poll () in
                  Unix.sleepf 0.02;
                  wait ()
              | _, WEXITED 0 -> Ok ()
              | _, st ->
                  Error
                    (Printf.sprintf "chaos: baseline client %d failed: %s (see %s)"
                       i (status_str st) (client_err "base" i))
          in
          let* () = wait () in
          clients (i + 1)
        end
      in
      let* () = clients 0 in
      terminate ~what:"baseline daemon" ~accept_crash:false dpid
    in
    (* ---------------- phase 2: chaos ---------------- *)
    let kills_delivered = ref 0 in
    let epochs = ref 1 in
    let chaos () =
      let dpid =
        ref
          (spawn_tracked
             (daemon_argv ~tag:"chaos" ~spec:(Some (spec_for cfg ~epoch:0))
                ~limits_on:true)
             ~out:(path "chaos-daemon.out") ~err:(path "chaos-daemon.err"))
      in
      (* The monitor: an exit of 70 is a delivered crash fault — count
         it and restart with the next epoch's schedule; anything else
         is a harness failure. *)
      let poll () =
        match Unix.waitpid [ WNOHANG ] !dpid with
        | 0, _ -> Ok ()
        | _, WEXITED 70 ->
            incr kills_delivered;
            let e = !epochs in
            epochs := e + 1;
            dpid :=
              spawn_tracked
                (daemon_argv ~tag:"chaos" ~spec:(Some (spec_for cfg ~epoch:e))
                   ~limits_on:true)
                ~out:(path "chaos-daemon.out") ~err:(path "chaos-daemon.err");
            Ok ()
        | _, st ->
            Error
              (Printf.sprintf "chaos: daemon died unexpectedly: %s (see %s)"
                 (status_str st) (path "chaos-daemon.err"))
      in
      let* () = wait_ready ~tag:"chaos" ~poll in
      let cpids =
        List.init cfg.clients (fun i ->
            ( i,
              spawn_tracked (client_argv ~tag:"chaos" i)
                ~out:(client_out "chaos" i) ~err:(client_err "chaos" i) ))
      in
      let rec monitor remaining =
        if remaining = [] then Ok ()
        else if Spamlab_io.monotonic_s () > deadline then begin
          List.iter
            (fun (_, p) ->
              try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ())
            remaining;
          Error
            (Printf.sprintf
               "chaos: wall budget (%.0fs) exceeded with %d clients running"
               cfg.wall_budget_s (List.length remaining))
        end
        else
          let* () = poll () in
          let rec reap acc = function
            | [] -> Ok (List.rev acc)
            | (i, p) :: rest -> (
                match Unix.waitpid [ WNOHANG ] p with
                | 0, _ -> reap ((i, p) :: acc) rest
                | _, WEXITED 0 -> reap acc rest
                | _, st ->
                    Error
                      (Printf.sprintf "chaos: client %d failed: %s (see %s)" i
                         (status_str st) (client_err "chaos" i)))
          in
          let* remaining = reap [] remaining in
          if remaining <> [] then Unix.sleepf 0.02;
          monitor remaining
      in
      let* () = monitor cpids in
      (* Counter consistency, best effort: the current boot may answer,
         or be dead/dying from a still-pending crash clause. *)
      let stats_note =
        let* () = poll () in
        match oneshot "chaos" Protocol.Stats with
        | Ok (Protocol.Ok payload) -> (
            let counter name =
              String.split_on_char '\n' payload
              |> List.find_map (fun l ->
                     match String.split_on_char ' ' l with
                     | [ k; v ] when k = name -> int_of_string_opt v
                     | _ -> None)
            in
            match
              ( counter "classify.messages", counter "verdicts.ham",
                counter "verdicts.unsure", counter "verdicts.spam" )
            with
            | Some m, Some h, Some u, Some s ->
                if h + u + s = m then
                  Ok
                    (Printf.sprintf
                       "stats: classify.messages=%d == verdicts %d+%d+%d\n" m h
                       u s)
                else
                  Error
                    (Printf.sprintf
                       "chaos: verdict counters inconsistent: \
                        classify.messages=%d but verdicts %d+%d+%d"
                       m h u s)
            | _ -> Ok "stats: counters missing from final boot\n")
        | _ -> Ok "stats: unavailable (daemon between epochs)\n"
      in
      let* stats_note = stats_note in
      Buffer.add_string report stats_note;
      (* A crash clause may still be pending on this boot; dying at it
         during drain is a delivered kill, not a failure. *)
      let* () = poll () in
      terminate ~what:"chaos daemon" ~accept_crash:true !dpid
    in
    (* ---------------- phase 3: invariants ---------------- *)
    let verify () =
      (* A fresh fault-free daemon must load the surviving db + store,
         report READY and complete a publish: recovery is not just
         "the file parses" but "the service comes back". *)
      let vpid =
        spawn_tracked
          [|
            cfg.exe; "serve";
            "--seed"; "0";
            "--db"; path "chaos.db";
            "--socket"; path "verify.sock";
            "--store-dir"; path "chaos.store";
            "--jobs"; "1";
          |]
          ~out:(path "verify-daemon.out") ~err:(path "verify-daemon.err")
      in
      let poll () =
        match Unix.waitpid [ WNOHANG ] vpid with
        | 0, _ -> Ok ()
        | _, st ->
            Error
              (Printf.sprintf
                 "chaos: verification daemon could not start on the surviving \
                  state: %s (see %s)"
                 (status_str st) (path "verify-daemon.err"))
      in
      let* () = wait_ready ~tag:"verify" ~poll in
      let* () =
        match oneshot "verify" Protocol.Health with
        | Ok (Protocol.Ok payload) when has_substring ~needle:"state=READY" payload
          ->
            Ok ()
        | Ok (Protocol.Ok payload) ->
            Error ("chaos: verification daemon not READY: " ^ String.trim payload)
        | Ok (Protocol.Err e) -> Error ("chaos: verification HEALTH: " ^ e)
        | Ok Protocol.Busy -> Error "chaos: verification HEALTH answered BUSY"
        | Error e ->
            Error ("chaos: verification HEALTH: " ^ Client.error_message e)
      in
      let* () =
        match oneshot "verify" Protocol.Publish with
        | Ok (Protocol.Ok _) -> Ok ()
        | Ok (Protocol.Err e) -> Error ("chaos: verification PUBLISH: " ^ e)
        | Ok Protocol.Busy -> Error "chaos: verification PUBLISH answered BUSY"
        | Error e ->
            Error ("chaos: verification PUBLISH: " ^ Client.error_message e)
      in
      let* () = terminate ~what:"verification daemon" ~accept_crash:false vpid in
      let* () =
        match Token_db.verify_string (read_file (path "chaos.db")) with
        | Ok r ->
            Buffer.add_string report
              (Printf.sprintf "db: ok (%d entries, %d spam + %d ham)\n"
                 r.Token_db.entries r.Token_db.nspam r.Token_db.nham);
            Ok ()
        | Error e -> Error ("chaos: published db corrupt: " ^ e)
      in
      let rec compare i =
        if i >= cfg.clients then Ok ()
        else
          let b = read_file (client_out "base" i) in
          let c = read_file (client_out "chaos" i) in
          if b = "" then
            Error (Printf.sprintf "chaos: baseline client %d produced no output" i)
          else if b = c then begin
            Buffer.add_string report
              (Printf.sprintf "client %d: stdout identical (%d bytes)\n" i
                 (String.length b));
            compare (i + 1)
          end
          else
            Error
              (Printf.sprintf
                 "chaos: client %d stdout diverged from baseline (%s vs %s)" i
                 (client_out "base" i) (client_out "chaos" i))
      in
      compare 0
    in
    Buffer.add_string report
      (Printf.sprintf "chaos: seed=%d clients=%d users=%d kills=%d planned\n"
         cfg.seed cfg.clients cfg.users cfg.kills);
    let result =
      let* () = baseline () in
      let* () = chaos () in
      let* () = verify () in
      Buffer.add_string report
        (Printf.sprintf "kills delivered=%d epochs=%d wall_s=%.1f\n"
           !kills_delivered !epochs
           (Spamlab_io.monotonic_s () -. t0));
      Buffer.add_string report "chaos ok\n";
      Ok (Buffer.contents report)
    in
    reap_stragglers ();
    result
  end
