(** Client side of the spamlab daemon protocol: single-request
    round-trips (spamc style, one connection per request) and a
    deterministic load generator for the soak/bench harness.

    {2 Crash recovery}

    The daemon only persists state at a publish; a crash loses the
    training delta since the last one.  The load generator therefore
    keeps every [TRAIN] request whose acknowledgement showed
    [pending > 0] in an {e unpublished buffer}, cleared when an ack
    shows [pending = 0] (a publish incorporated everything so far).
    When a request fails at the transport level (daemon killed), the
    generator reconnect-retries and first {e replays} the buffer in
    original order, then the failed request — so the multiset and
    order of effective training is identical to an uninterrupted run,
    and the final published database is byte-identical. *)

type conn

val connect : Daemon.addr -> (conn, string) result
val close : conn -> unit

val request : conn -> Protocol.request -> (Protocol.response, string) result
(** Send one request and read its response.  [Error] is a transport or
    framing failure (daemon gone, torn response) — the connection is
    dead; a protocol-level [Err] arrives as [Ok (Err _)]. *)

val roundtrip : Daemon.addr -> Protocol.request -> (Protocol.response, string) result
(** Connect, {!request}, close. *)

(** {1 Deterministic load generation} *)

type load_config = {
  addr : Daemon.addr;
  seed : int;  (** Sole source of corpus and schedule randomness. *)
  clients : int;  (** Logical clients; each sends an opening PING. *)
  train_size : int;  (** Total messages trained. *)
  train_batch : int;  (** Messages per TRAIN request (single-label). *)
  eval_size : int;  (** Messages classified after the final publish. *)
  classify_batch : int;
  spam_fraction : float;
  users : int;
      (** Tenants: [> 0] deals messages round-robin across that many
          fixed [User] names (TRAIN batches keyed per tenant, each
          CLASSIFY batch addressed to one) — requires the daemon to run
          a tenant store.  [0] (default) sends no [User] header and
          reproduces the single-filter schedule byte for byte. *)
  reconnect_attempts : int;
      (** Transport-failure retries per logical request; each retry
          waits [reconnect_delay_s] and replays the unpublished
          buffer first. *)
  reconnect_delay_s : float;
}

val default_load : addr:Daemon.addr -> seed:int -> load_config
(** 2 clients, 96 train / 48 eval messages, batches of 8, 50% spam,
    50 × 0.2 s reconnect budget. *)

type load_report = {
  summary : string;
      (** Deterministic: request/message tallies and every CLASSIFY
          verdict line.  Byte-identical across daemon [--jobs] values
          and across crash-and-replay vs uninterrupted runs. *)
  detail : string;
      (** Not deterministic: reconnects, publish seq, wall time. *)
  trained : int;
  classified : int;
  reconnects : int;
  wall_s : float;
}

val load : load_config -> (load_report, string) result
(** Run the schedule: per-client PING, single-label TRAIN batches over
    a generated corpus, PUBLISH, CLASSIFY batches over a held-out
    corpus, STATS.  [Error] when the daemon stays unreachable through
    the reconnect budget or answers a protocol [Err] to a request the
    schedule needs ([Ok] acks with [malformed > 0] are reported, not
    fatal). *)
