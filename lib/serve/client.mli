(** Client side of the spamlab daemon protocol: single-request
    round-trips (spamc style, one connection per request) and a
    deterministic load generator for the soak/bench harness.

    {2 Crash recovery}

    The daemon only persists state at a publish; a crash loses the
    training delta since the last one.  The load generator therefore
    keeps every [TRAIN] request whose acknowledgement showed
    [pending > 0] in an {e unpublished buffer}, cleared when an ack
    shows [pending = 0] (a publish incorporated everything so far).
    When a request fails at the transport level (daemon killed), the
    generator reconnect-retries and first {e replays} the buffer in
    original order, then the failed request — so the multiset and
    order of effective training is identical to an uninterrupted run,
    and the final published database is byte-identical.

    PR 10 hardens this for overloaded and repeatedly-crashing daemons:

    {ul
    {- {b Restart detection.}  With limits armed, every mutation ack
       carries a [boot=] id; a changed boot is the exact restart
       signal, covering restarts that fall {e between} round-trips
       (no transport error to trip on).  A torn connection alone no
       longer triggers replay — it may be deadline reaping or
       admission shedding, where a blind replay would double-train —
       the client just retries and lets the next ack's boot decide.}
    {- {b Reconciled replay.}  A publish commits {e every} client's
       journaled ops, so a buffered request may already be durable
       (another client published; we never saw [pending = 0]) and
       re-sending it would double-apply.  Tenant TRAIN acks carry
       [user.msgs=], the tenant's total message count; on restart the
       client probes each buffered tenant's surviving count with a
       zero-message TRAIN and skips entries at or below it — exact,
       because each tenant has a single writer and crash survival is
       a prefix of the dead boot's journal order.  Skipped entries
       stay buffered in case this boot also dies unpublished.}
    {- {b Backoff.}  [BUSY] / [ERR DEGRADED] answers are absorbed
       with capped exponential backoff under seed-derived
       deterministic jitter, so a load run against a shedding or
       degraded daemon completes with the same summary bytes as an
       uncontended one.}} *)

type conn

type error = {
  context : string;  (** what was being attempted *)
  errno : Unix.error option;
      (** the precise errno when the failure was a syscall —
          [ECONNREFUSED] (daemon down), [ECONNRESET]/[EPIPE] (torn
          mid-exchange), [ENOENT] (socket file not bound yet), … *)
  recoverable : bool;
      (** whether a reconnect-and-retry can help: true for
          down/torn-connection errnos and torn response frames, false
          for configuration problems (bad address, [EACCES]) — the
          backoff logic fails fast on those. *)
}

val error_message : error -> string
(** ["context: strerror"] — the human rendering. *)

val connect : Daemon.addr -> (conn, error) result
val close : conn -> unit

val request : conn -> Protocol.request -> (Protocol.response, error) result
(** Send one request and read its response.  [Error] is a transport or
    framing failure (daemon gone, torn response) — the connection is
    dead; a protocol-level [Err] arrives as [Ok (Err _)] and [BUSY] as
    [Ok Busy]. *)

val roundtrip : Daemon.addr -> Protocol.request -> (Protocol.response, error) result
(** Connect, {!request}, close. *)

val stall :
  addr:Daemon.addr -> bytes:string -> hold_s:float -> (string, error) result
(** Adversarial parasite for the overload gates: connect, send [bytes]
    (typically half a header, possibly nothing), then stay silent up
    to [hold_s] seconds.  [Ok "reaped"] when the daemon closed the
    connection first — its deadline/idle reaping worked — and
    [Ok "held"] when the hold expired with the connection still up. *)

(** {1 Deterministic load generation} *)

type load_config = {
  addr : Daemon.addr;
  seed : int;  (** Sole source of corpus and schedule randomness. *)
  clients : int;  (** Logical clients; each sends an opening PING. *)
  train_size : int;  (** Total messages trained. *)
  train_batch : int;  (** Messages per TRAIN request (single-label). *)
  eval_size : int;  (** Messages classified after the final publish. *)
  classify_batch : int;
  spam_fraction : float;
  users : int;
      (** Tenants: [> 0] deals messages round-robin across that many
          fixed [User] names (TRAIN batches keyed per tenant, each
          CLASSIFY batch addressed to one) — requires the daemon to run
          a tenant store.  [0] (default) sends no [User] header and
          reproduces the single-filter schedule byte for byte. *)
  user_prefix : string;
      (** Prepended to every tenant name (["c0-u000"]), so concurrent
          load processes against one daemon can address disjoint
          tenant sets and keep their verdict streams deterministic.
          Default [""] — the historical names, byte for byte. *)
  reconnect_attempts : int;
      (** Total recovery budget per logical request: transport
          reconnects (replaying the unpublished buffer first), [BUSY]
          and [ERR DEGRADED] backoffs all draw from it.  Backoff
          delays are capped-exponential with seed-derived
          deterministic jitter. *)
  reconnect_delay_s : float;
}

val default_load : addr:Daemon.addr -> seed:int -> load_config
(** 2 clients, 96 train / 48 eval messages, batches of 8, 50% spam,
    50 × 0.2 s reconnect budget. *)

type load_report = {
  summary : string;
      (** Deterministic: request/message tallies and every CLASSIFY
          verdict line.  Byte-identical across daemon [--jobs] values
          and across crash-and-replay vs uninterrupted runs. *)
  detail : string;
      (** Not deterministic: reconnects, publish seq, wall time. *)
  trained : int;
  classified : int;
  reconnects : int;
  wall_s : float;
}

val load : load_config -> (load_report, string) result
(** Run the schedule: per-client PING, single-label TRAIN batches over
    a generated corpus, PUBLISH, CLASSIFY batches over a held-out
    corpus, STATS.  [Error] when the daemon stays unreachable through
    the reconnect budget or answers a protocol [Err] to a request the
    schedule needs ([Ok] acks with [malformed > 0] are reported, not
    fatal). *)
