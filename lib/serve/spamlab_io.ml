module Fault = Spamlab_fault

exception Timeout of string

let () =
  Printexc.register_printer (function
    | Timeout what -> Some (Printf.sprintf "Spamlab_io.Timeout(%s)" what)
    | _ -> None)

(* Deadlines are absolute points on the monotonic clock, so a caller can
   arm one deadline and thread it through many syscalls without the
   budget resetting at each hop (a slow-loris peer trickling one byte
   per syscall must not extend its welcome). *)
let monotonic_s () =
  Int64.to_float (Spamlab_obs.Clock.now_ns ()) *. 1e-9

(* Block until [fd] is ready, or the deadline passes.  Only reached
   when a deadline is armed, so the ["serve.deadline"] probe costs
   deadline-free paths nothing; a transient fault there simulates the
   timeout itself, letting tests and the chaos harness exercise the
   reaping paths without real waiting. *)
let wait_fd ~what ~for_write fd deadline =
  (try Fault.check "serve.deadline"
   with exn when Fault.is_transient exn -> raise (Timeout what));
  let rec go () =
    let remaining = deadline -. monotonic_s () in
    if remaining <= 0.0 then raise (Timeout what)
    else
      let r, w = if for_write then ([], [ fd ]) else ([ fd ], []) in
      match Unix.select r w [] remaining with
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | [], [], _ -> raise (Timeout what)
      | _ -> ()
  in
  go ()

let await ~what ~for_write fd = function
  | None -> ()
  | Some deadline -> wait_fd ~what ~for_write fd deadline

(* Transient injected faults are retried like EINTR, but bounded: a
   probability selector could otherwise fire forever.  The bound is
   generous — the pool's supervision uses 3 attempts; I/O sites see
   more calls, so give them more room. *)
let max_transient_retries = 16

let check_site site attempts =
  match site with
  | None -> ()
  | Some s -> (
      try Fault.check s
      with exn when Fault.is_transient exn ->
        if !attempts >= max_transient_retries then raise exn;
        incr attempts;
        raise_notrace Exit)

(* Run one syscall attempt under the site check and EINTR/EAGAIN
   retry.  [Exit] is the internal "retry" signal from [check_site]. *)
let rec syscall site attempts f =
  match
    check_site site attempts;
    f ()
  with
  | n -> n
  | exception Exit -> syscall site attempts f
  | exception Unix.Unix_error ((EINTR | EAGAIN), _, _) ->
      syscall site attempts f

let bad_range buf pos len =
  pos < 0 || len < 0 || pos > Bytes.length buf - len

let read_some ?site ?deadline fd buf pos len =
  if bad_range buf pos len then invalid_arg "Spamlab_io.read_some";
  if len = 0 then 0
  else
    let attempts = ref 0 in
    syscall site attempts (fun () ->
        await ~what:"read" ~for_write:false fd deadline;
        Unix.read fd buf pos len)

let really_read ?site ?deadline fd buf pos len =
  if bad_range buf pos len then invalid_arg "Spamlab_io.really_read";
  let attempts = ref 0 in
  let rec go pos len =
    if len > 0 then
      match
        syscall site attempts (fun () ->
            await ~what:"read" ~for_write:false fd deadline;
            Unix.read fd buf pos len)
      with
      | 0 -> raise End_of_file
      | n -> go (pos + n) (len - n)
  in
  go pos len

let really_write ?site ?deadline fd buf pos len =
  if bad_range buf pos len then invalid_arg "Spamlab_io.really_write";
  let attempts = ref 0 in
  let rec go pos len =
    if len > 0 then
      let n =
        syscall site attempts (fun () ->
            await ~what:"write" ~for_write:true fd deadline;
            Unix.write fd buf pos len)
      in
      go (pos + n) (len - n)
  in
  go pos len

let really_write_string ?site ?deadline fd s pos len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Spamlab_io.really_write_string";
  let attempts = ref 0 in
  let rec go pos len =
    if len > 0 then
      let n =
        syscall site attempts (fun () ->
            await ~what:"write" ~for_write:true fd deadline;
            Unix.write_substring fd s pos len)
      in
      go (pos + n) (len - n)
  in
  go pos len

(* ------------------------------------------------------------------ *)
(* Buffered reader                                                     *)

type reader = {
  fd : Unix.file_descr;
  site : string option;
  buf : Bytes.t;
  mutable lo : int;  (* first unconsumed byte *)
  mutable hi : int;  (* one past the last valid byte *)
  mutable eof : bool;
  mutable deadline : float option;
      (** absolute monotonic seconds; applied to every refill *)
}

let reader ?site ?(buf_size = 65_536) fd =
  {
    fd;
    site;
    buf = Bytes.create (max 1 buf_size);
    lo = 0;
    hi = 0;
    eof = false;
    deadline = None;
  }

let set_deadline r deadline = r.deadline <- deadline
let buffered r = r.hi - r.lo

(* Pull more bytes into the buffer; false at end of stream. *)
let refill r =
  if r.eof then false
  else begin
    if r.lo = r.hi then begin
      r.lo <- 0;
      r.hi <- 0
    end
    else if r.hi = Bytes.length r.buf then begin
      Bytes.blit r.buf r.lo r.buf 0 (r.hi - r.lo);
      r.hi <- r.hi - r.lo;
      r.lo <- 0
    end;
    match
      read_some ?site:r.site ?deadline:r.deadline r.fd r.buf r.hi
        (Bytes.length r.buf - r.hi)
    with
    | 0 ->
        r.eof <- true;
        false
    | n ->
        r.hi <- r.hi + n;
        true
  end

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_line r ~max =
  let out = Buffer.create 80 in
  let discarding = ref false in
  let rec go () =
    match Bytes.index_from_opt r.buf r.lo '\n' with
    | Some nl when nl < r.hi ->
        let too_long =
          !discarding || Buffer.length out + (nl - r.lo) > max
        in
        if not too_long then Buffer.add_subbytes out r.buf r.lo (nl - r.lo);
        r.lo <- nl + 1;
        if too_long then `Too_long else `Line (strip_cr (Buffer.contents out))
    | _ ->
        if not !discarding then
          Buffer.add_subbytes out r.buf r.lo (r.hi - r.lo);
        r.lo <- r.hi;
        if Buffer.length out > max then begin
          (* Oversized: stop accumulating, but keep consuming to the
             terminator so the stream can resynchronize. *)
          discarding := true;
          Buffer.clear out
        end;
        if refill r then go ()
        else if !discarding then `Too_long
        else if Buffer.length out = 0 then `Eof
        else `Line (strip_cr (Buffer.contents out))
  in
  go ()

let read_exact r dst pos len =
  if pos < 0 || len < 0 || pos > Bytes.length dst - len then
    invalid_arg "Spamlab_io.read_exact";
  let rec go pos len =
    if len = 0 then true
    else begin
      let avail = r.hi - r.lo in
      if avail > 0 then begin
        let n = min avail len in
        Bytes.blit r.buf r.lo dst pos n;
        r.lo <- r.lo + n;
        go (pos + n) (len - n)
      end
      else if refill r then go pos len
      else false
    end
  in
  go pos len
