(** The spamlab classification daemon — a spamd-shaped long-running
    service speaking {!Protocol} over a unix or TCP socket.

    {2 Data plane}

    Classification reads an {e immutable baseline} token DB — the
    state as of the last publish — through the zero-copy ingest path,
    fanned across the shared domain pool ({!Spamlab_parallel}) over
    the process-global frozen intern snapshot.  [TRAIN]/[UNTRAIN]
    mutate a separate {e delta} filter (a copy-on-write
    [Token_db.copy] of the baseline's lineage, so deltas cost
    O(|changes|)).  Every [publish_every] trained messages — or on an
    explicit [PUBLISH] — the delta is persisted to the crash-safe v3
    store ([Filter.save_file]: temp + fsync + atomic rename) and then
    becomes the new baseline, and the intern snapshot is refreshed.
    Classification therefore always sees a consistent published state,
    and a crash at any point restarts from the last publish.

    {2 Tenants}

    With [config.store] set, requests carrying a [User] header are
    routed to that user's per-tenant Bayes state in a
    {!Spamlab_store.Store} (created with the shared filter state as
    its global prior).  A publish is also the store's durability point
    ({!Spamlab_store.Store.commit}); an explicit [PUBLISH] further
    compacts every shard to its canonical bytes.  Tenant classify
    probes the same frozen intern snapshot as the shared path, so
    tokens a tenant trained become visible at the next publish — the
    same published-state contract.  [User]-routed requests without a
    configured store answer a request-level [Err].

    {2 Overload hardening}

    {!run} multiplexes all admitted connections through one
    [select]-driven event loop, serving at most one request per ready
    connection per round in admission order.  [limits] arms the
    defenses, all off by default:

    - {e read/write deadlines} ([read_timeout_s]/[write_timeout_s]) —
      absolute per-frame budgets; a slow-loris peer trickling bytes is
      answered [ERR] and reaped when its budget expires, while other
      connections keep being served.
    - {e idle reaping} ([idle_timeout_s]) — connections that complete
      no request within the window are closed outright.
    - {e admission control} ([max_conns]) — connections over the cap
      are answered [BUSY] and closed at accept.
    - {e backpressure} ([max_inflight]) — requests over the per-round
      execution quota are answered [BUSY] without executing (the frame
      is read and discarded, so the stream stays framed).
    - {e graceful drain} — once [stop] fires the daemon stops
      accepting, keeps serving already-connected clients that are
      actively sending, closes idle ones, and abandons whatever is
      left at [drain_s].
    - {e degraded mode} ([degraded_after]) — after that many {e
      consecutive} recoverable publish failures, TRAIN/UNTRAIN answer
      [ERR DEGRADED] (refused before touching state, so safely
      retryable) while CLASSIFY keeps serving the last published
      snapshot; one successful publish — e.g. an explicit [PUBLISH] —
      recovers.  [HEALTH] reports
      [state=READY|DEGRADED|DRAINING] plus transition counters.

    With any limit armed, mutation acks additionally carry two
    recovery beacons: [boot=] (a per-process id, so a client can tell
    a daemon restart from mere connection loss — reaping and shedding
    tear connections without losing state) and, on tenant
    TRAIN/UNTRAIN, [user.msgs=] (the tenant's total message count
    after the request, durable exactly as far as the training itself —
    the anchor for the client's exactly-once replay reconciliation).
    Unarmed, acks keep their historical bytes.

    {2 Fault sites}

    - ["serve.accept"] — before accepting a ready connection
      (transient: the accept round is retried);
    - ["serve.read"] — before every protocol-read syscall (transient:
      retried by {!Spamlab_io});
    - ["serve.write"] — before every protocol-write syscall (transient:
      retried by {!Spamlab_io});
    - ["serve.deadline"] — when an armed deadline starts a wait
      (transient: reported as the timeout itself);
    - ["serve.publish"] — at the head of a publish, before any
      mutation (crash: the process dies with the baseline on disk
      intact; the delta since the last publish is lost, which is the
      recovery contract clients replay against);

    plus the ["db.save.write"] / ["db.save.rename"] sites inside the
    save itself.

    {2 Statistics}

    The [STATS] verb renders request/verdict/train counters followed
    by per-verb latency histogram lines (prefixed ["latency."]).  The
    counters are a pure function of the request stream — identical at
    every [--jobs] — while latency lines describe real time and are
    not; deterministic consumers filter the ["latency."] prefix. *)

type limits = {
  read_timeout_s : float;
      (** Absolute budget for reading one request frame; 0 = none. *)
  write_timeout_s : float;
      (** Absolute budget for writing one response; 0 = none. *)
  idle_timeout_s : float;
      (** Reap connections completing no request this long; 0 = never. *)
  max_conns : int;  (** Admission cap; 0 = unlimited. *)
  max_inflight : int;
      (** Per-round request execution quota; 0 = unlimited. *)
  drain_s : float;
      (** Grace between [stop] firing and abandoning open conns. *)
  degraded_after : int;
      (** Consecutive publish failures before degraded mode; 0 = never. *)
}

val default_limits : limits
(** Everything off (all zeroes) except [drain_s = 5.0].  With default
    limits and no faults armed the daemon's observable behaviour —
    responses, STATS bytes, published db — is identical to the
    pre-hardening releases. *)

type config = {
  addr : addr;
  db_path : string;  (** Loaded if present, created on first publish. *)
  tokenizer : Spamlab_tokenizer.Tokenizer.t;
  options : Spamlab_spambayes.Options.t;
  publish_every : int;
      (** Trained/untrained messages between automatic publishes;
          [0] disables automatic publishing ([PUBLISH] still works). *)
  max_body : int;
  jobs : int;
  store : Spamlab_store.Store.config option;
      (** Tenant store for [User]-routed requests; [None] (default)
          serves the single shared filter only. *)
  limits : limits;
}

and addr = Unix_sock of string | Tcp of string * int

val default_config : ?addr:addr -> db_path:string -> unit -> config
(** spambayes tokenizer, default options, publish every 32,
    {!Protocol.default_max_body}, jobs 1, no tenant store,
    {!default_limits}; [addr] defaults to a unix socket
    ["spamlab.sock"] beside [db_path]. *)

type t

val create : config -> (t, string) result
(** Load (or initialize) the filter state and spawn the worker pool.
    [Error] on an unreadable or corrupt database — a daemon must not
    silently start from scratch over damaged state. *)

val shutdown : t -> unit
(** Join the worker pool.  The socket teardown belongs to {!run}. *)

val handle_request : t -> Protocol.request -> Protocol.response
(** Execute one request against the state (no I/O).  Never raises:
    injected transient/fatal faults and semantic failures (impossible
    UNTRAIN, unwritable store) become [Err]; crash faults exit. *)

val serve_connection : t -> Unix.file_descr -> unit
(** Run the request/response loop on one connected descriptor until
    EOF or a framing error (answered with one [Err] line, then
    close).  Never raises on protocol or peer misbehaviour; does not
    close [fd]. *)

val stats_payload : t -> string
(** The [STATS] payload, rendered from the current counters. *)

val publish_seq : t -> int
(** Number of publishes so far (0 before the first). *)

val run :
  ?ready:(Unix.sockaddr -> unit) ->
  ?stop:(unit -> bool) ->
  t ->
  (unit, string) result
(** Bind, listen and serve — a select-multiplexed event loop over the
    listener and every admitted connection — until [stop] returns true
    (polled each round, ≤0.2 s latency), then drain per
    [config.limits.drain_s].  [ready] fires once with the bound
    address — for TCP port 0, the actual port.  Stale unix socket
    files are replaced; SIGPIPE is ignored for the process.  [Error]
    on bind/listen failure. *)
