(** The spamlab classification daemon — a spamd-shaped long-running
    service speaking {!Protocol} over a unix or TCP socket.

    {2 Data plane}

    Classification reads an {e immutable baseline} token DB — the
    state as of the last publish — through the zero-copy ingest path,
    fanned across the shared domain pool ({!Spamlab_parallel}) over
    the process-global frozen intern snapshot.  [TRAIN]/[UNTRAIN]
    mutate a separate {e delta} filter (a copy-on-write
    [Token_db.copy] of the baseline's lineage, so deltas cost
    O(|changes|)).  Every [publish_every] trained messages — or on an
    explicit [PUBLISH] — the delta is persisted to the crash-safe v3
    store ([Filter.save_file]: temp + fsync + atomic rename) and then
    becomes the new baseline, and the intern snapshot is refreshed.
    Classification therefore always sees a consistent published state,
    and a crash at any point restarts from the last publish.

    {2 Tenants}

    With [config.store] set, requests carrying a [User] header are
    routed to that user's per-tenant Bayes state in a
    {!Spamlab_store.Store} (created with the shared filter state as
    its global prior).  A publish is also the store's durability point
    ({!Spamlab_store.Store.commit}); an explicit [PUBLISH] further
    compacts every shard to its canonical bytes.  Tenant classify
    probes the same frozen intern snapshot as the shared path, so
    tokens a tenant trained become visible at the next publish — the
    same published-state contract.  [User]-routed requests without a
    configured store answer a request-level [Err].

    {2 Fault sites}

    - ["serve.accept"] — before accepting a ready connection
      (transient: the accept round is retried);
    - ["serve.read"] — before every protocol-read syscall (transient:
      retried by {!Spamlab_io});
    - ["serve.publish"] — at the head of a publish, before any
      mutation (crash: the process dies with the baseline on disk
      intact; the delta since the last publish is lost, which is the
      recovery contract clients replay against);

    plus the ["db.save.write"] / ["db.save.rename"] sites inside the
    save itself.

    {2 Statistics}

    The [STATS] verb renders request/verdict/train counters followed
    by per-verb latency histogram lines (prefixed ["latency."]).  The
    counters are a pure function of the request stream — identical at
    every [--jobs] — while latency lines describe real time and are
    not; deterministic consumers filter the ["latency."] prefix. *)

type config = {
  addr : addr;
  db_path : string;  (** Loaded if present, created on first publish. *)
  tokenizer : Spamlab_tokenizer.Tokenizer.t;
  options : Spamlab_spambayes.Options.t;
  publish_every : int;
      (** Trained/untrained messages between automatic publishes;
          [0] disables automatic publishing ([PUBLISH] still works). *)
  max_body : int;
  jobs : int;
  store : Spamlab_store.Store.config option;
      (** Tenant store for [User]-routed requests; [None] (default)
          serves the single shared filter only. *)
}

and addr = Unix_sock of string | Tcp of string * int

val default_config : ?addr:addr -> db_path:string -> unit -> config
(** spambayes tokenizer, default options, publish every 32,
    {!Protocol.default_max_body}, jobs 1, no tenant store; [addr]
    defaults to a unix socket ["spamlab.sock"] beside [db_path]. *)

type t

val create : config -> (t, string) result
(** Load (or initialize) the filter state and spawn the worker pool.
    [Error] on an unreadable or corrupt database — a daemon must not
    silently start from scratch over damaged state. *)

val shutdown : t -> unit
(** Join the worker pool.  The socket teardown belongs to {!run}. *)

val handle_request : t -> Protocol.request -> Protocol.response
(** Execute one request against the state (no I/O).  Never raises:
    injected transient/fatal faults and semantic failures (impossible
    UNTRAIN, unwritable store) become [Err]; crash faults exit. *)

val serve_connection : t -> Unix.file_descr -> unit
(** Run the request/response loop on one connected descriptor until
    EOF or a framing error (answered with one [Err] line, then
    close).  Never raises on protocol or peer misbehaviour; does not
    close [fd]. *)

val stats_payload : t -> string
(** The [STATS] payload, rendered from the current counters. *)

val publish_seq : t -> int
(** Number of publishes so far (0 before the first). *)

val run :
  ?ready:(Unix.sockaddr -> unit) ->
  ?stop:(unit -> bool) ->
  t ->
  (unit, string) result
(** Bind, listen and serve until [stop] returns true (polled between
    connections, checked at ≤0.2 s latency).  [ready] fires once with
    the bound address — for TCP port 0, the actual port.  Stale unix
    socket files are replaced; SIGPIPE is ignored for the process.
    [Error] on bind/listen failure. *)
