(** EINTR- and short-transfer-safe file-descriptor I/O, shared by the
    daemon/client wire protocol ({!Spamlab_serve}) and the crash-safe
    token-DB save path ([Filter.save_file]).

    [Unix.read] and [Unix.write] are allowed to transfer fewer bytes
    than asked — pipes and sockets do this routinely under load — and
    both can fail with [EINTR] when a signal lands mid-call.  Every
    helper here loops until the full count is transferred, retrying
    [EINTR] (and [EAGAIN], for the rare spurious wakeup on a blocking
    descriptor) transparently.

    {2 Fault injection}

    Each helper takes an optional [site] (a {!Spamlab_fault} site name,
    e.g. ["serve.read"]) consulted before every underlying syscall.  An
    injected {e transient} fault is retried like [EINTR] — bounded by an
    internal attempt budget so a pathological spec cannot spin forever —
    while fatal faults propagate and crash faults kill the process at
    exactly that point.  [?site] absent (or the site unarmed) costs one
    atomic load per syscall, nothing more.

    {2 Deadlines}

    Each helper also takes an optional [deadline]: an {e absolute}
    point on the monotonic clock ({!monotonic_s}), checked with a
    [select] wait before every underlying syscall.  Absolute rather
    than per-call, so one armed deadline bounds an entire framed
    transfer — a slow-loris peer trickling one byte per syscall cannot
    renew its budget.  Expiry raises {!Timeout}.  When (and only when)
    a deadline is armed, the wait consults the ["serve.deadline"] fault
    site; a transient fault there is reported as the timeout itself, so
    deterministic fault schedules can exercise reaping paths without
    real waiting.  [?deadline] absent costs nothing. *)

exception Timeout of string
(** An armed deadline expired before the descriptor became ready.  The
    payload names the direction (["read"]/["write"]). *)

val monotonic_s : unit -> float
(** The monotonic clock ({!Spamlab_obs.Clock.now_ns}) in seconds — the
    time base deadlines are expressed in. *)

val really_read :
  ?site:string -> ?deadline:float -> Unix.file_descr -> bytes -> int -> int -> unit
(** [really_read fd buf pos len] fills [buf.[pos .. pos+len-1]] from
    [fd], looping over short reads.
    @raise End_of_file if the descriptor is exhausted first.
    @raise Invalid_argument on a bad range. *)

val read_some :
  ?site:string -> ?deadline:float -> Unix.file_descr -> bytes -> int -> int -> int
(** One [Unix.read] with [EINTR]/transient retry: the number of bytes
    read (at least 1), or 0 at end of stream. *)

val really_write :
  ?site:string -> ?deadline:float -> Unix.file_descr -> bytes -> int -> int -> unit
(** [really_write fd buf pos len] writes all [len] bytes, looping over
    short writes.  @raise Invalid_argument on a bad range. *)

val really_write_string :
  ?site:string -> ?deadline:float -> Unix.file_descr -> string -> int -> int -> unit

(** {1 Buffered line/frame reading}

    The wire protocol interleaves CRLF-terminated lines with
    length-prefixed binary bodies on one descriptor, so the reader must
    buffer: a line read may pull body bytes into the buffer, and the
    subsequent body read must consume them before touching the
    descriptor again. *)

type reader

val reader : ?site:string -> ?buf_size:int -> Unix.file_descr -> reader
(** Wrap a descriptor.  [site] is consulted on every refill ([?site] of
    the read helpers above).  [buf_size] defaults to 64 KiB. *)

val set_deadline : reader -> float option -> unit
(** Arm (or disarm, with [None]) an absolute monotonic deadline applied
    to every refill until changed.  Callers typically arm it once per
    protocol frame and disarm after, so one budget covers however many
    syscalls the frame needs.  An expired deadline makes the next
    refill raise {!Timeout}; bytes already buffered remain readable. *)

val buffered : reader -> int
(** Bytes already pulled from the descriptor but not yet consumed.
    Lets a multiplexing caller know a further frame may be parsable
    without the descriptor selecting readable again. *)

val read_line : reader -> max:int -> [ `Line of string | `Eof | `Too_long ]
(** The next line, terminated by ["\n"] (a trailing ["\r"] is stripped,
    so CRLF and bare-LF peers both work), without its terminator.
    [`Eof] when the stream ends before any byte of a line; a stream
    ending mid-line yields the partial line.  [`Too_long] once the line
    exceeds [max] bytes — the oversized prefix is discarded up to the
    next terminator so framing can resynchronize if the caller chooses
    to continue. *)

val read_exact : reader -> bytes -> int -> int -> bool
(** [read_exact r buf pos len] — like {!really_read} but draining the
    reader's buffer first; [false] if the stream ends before [len]
    bytes arrive (a torn frame), [true] on success. *)
