(** EINTR- and short-transfer-safe file-descriptor I/O, shared by the
    daemon/client wire protocol ({!Spamlab_serve}) and the crash-safe
    token-DB save path ([Filter.save_file]).

    [Unix.read] and [Unix.write] are allowed to transfer fewer bytes
    than asked — pipes and sockets do this routinely under load — and
    both can fail with [EINTR] when a signal lands mid-call.  Every
    helper here loops until the full count is transferred, retrying
    [EINTR] (and [EAGAIN], for the rare spurious wakeup on a blocking
    descriptor) transparently.

    {2 Fault injection}

    Each helper takes an optional [site] (a {!Spamlab_fault} site name,
    e.g. ["serve.read"]) consulted before every underlying syscall.  An
    injected {e transient} fault is retried like [EINTR] — bounded by an
    internal attempt budget so a pathological spec cannot spin forever —
    while fatal faults propagate and crash faults kill the process at
    exactly that point.  [?site] absent (or the site unarmed) costs one
    atomic load per syscall, nothing more. *)

val really_read : ?site:string -> Unix.file_descr -> bytes -> int -> int -> unit
(** [really_read fd buf pos len] fills [buf.[pos .. pos+len-1]] from
    [fd], looping over short reads.
    @raise End_of_file if the descriptor is exhausted first.
    @raise Invalid_argument on a bad range. *)

val read_some : ?site:string -> Unix.file_descr -> bytes -> int -> int -> int
(** One [Unix.read] with [EINTR]/transient retry: the number of bytes
    read (at least 1), or 0 at end of stream. *)

val really_write : ?site:string -> Unix.file_descr -> bytes -> int -> int -> unit
(** [really_write fd buf pos len] writes all [len] bytes, looping over
    short writes.  @raise Invalid_argument on a bad range. *)

val really_write_string : ?site:string -> Unix.file_descr -> string -> int -> int -> unit

(** {1 Buffered line/frame reading}

    The wire protocol interleaves CRLF-terminated lines with
    length-prefixed binary bodies on one descriptor, so the reader must
    buffer: a line read may pull body bytes into the buffer, and the
    subsequent body read must consume them before touching the
    descriptor again. *)

type reader

val reader : ?site:string -> ?buf_size:int -> Unix.file_descr -> reader
(** Wrap a descriptor.  [site] is consulted on every refill ([?site] of
    the read helpers above).  [buf_size] defaults to 64 KiB. *)

val read_line : reader -> max:int -> [ `Line of string | `Eof | `Too_long ]
(** The next line, terminated by ["\n"] (a trailing ["\r"] is stripped,
    so CRLF and bare-LF peers both work), without its terminator.
    [`Eof] when the stream ends before any byte of a line; a stream
    ending mid-line yields the partial line.  [`Too_long] once the line
    exceeds [max] bytes — the oversized prefix is discarded up to the
    next terminator so framing can resynchronize if the caller chooses
    to continue. *)

val read_exact : reader -> bytes -> int -> int -> bool
(** [read_exact r buf pos len] — like {!really_read} but draining the
    reader's buffer first; [false] if the stream ends before [len]
    bytes arrive (a torn frame), [true] on success. *)
