(* Deterministic domain pool on stdlib Domain/Mutex/Condition.

   The contract that makes parallel experiments reproducible: work is
   partitioned by index, every element's computation must depend only on
   its input (tasks derive their randomness from named Rng streams, never
   a shared mutable generator), and results are written into a slot per
   index — so the value of [map_array] is independent of how elements
   land on domains.  Exception propagation is deterministic too: claims
   are handed out in increasing index order, so the lowest raising index
   is always claimed and evaluated, and its exception is the one
   re-raised at the join regardless of scheduling. *)

module Obs = Spamlab_obs.Obs
module Clock = Spamlab_obs.Clock
module Fault = Spamlab_fault

(* Every entry point that accepts a jobs count — [--jobs] in bin/spamlab
   and bench/main, the [SPAMLAB_JOBS] environment variable, and
   [Lab.create ?jobs] — funnels through these two functions so an
   invalid value fails with one message everywhere. *)
let jobs_error got =
  Printf.sprintf "--jobs/SPAMLAB_JOBS must be a positive integer (got %s)" got

let validate_jobs n =
  if n >= 1 then Ok n else Error (jobs_error (string_of_int n))

let parse_jobs s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n -> validate_jobs n
  | None -> Error (jobs_error (if s = "" then "an empty string" else s))

let default_jobs () =
  match Sys.getenv_opt "SPAMLAB_JOBS" with
  | Some v -> (
      match parse_jobs v with
      | Ok n -> n
      | Error msg -> invalid_arg msg)
  | None -> Domain.recommended_domain_count ()

exception Task_failed of { site : string; attempts : int }

let () =
  Printexc.register_printer (function
    | Task_failed { site; attempts } ->
        Some
          (Printf.sprintf
             "Spamlab_parallel.Task_failed(site %s, %d attempts)" site attempts)
    | _ -> None)

let max_attempts = 3

module Pool = struct
  type task = unit -> unit

  let retried = Obs.counter "fault.retried"
  let drained_failures = Obs.counter "pool.drained_failures"

  (* Task-level supervision: evaluate one element, retrying faults
     classified transient up to [max_attempts] total attempts.  The
     backoff is a deterministic [Domain.cpu_relax] spin — no clock, no
     randomness — so supervised maps keep the pool's reproducibility
     contract.  A transient fault that persists through every attempt
     becomes a typed [Task_failed] carrying the site and attempt count,
     which then propagates through the map's usual lowest-index
     exception path; non-transient exceptions propagate unchanged on
     the first attempt. *)
  let eval_element f x =
    let backoff attempt =
      for _ = 1 to 1 lsl min attempt 10 do
        Domain.cpu_relax ()
      done
    in
    let rec attempt n =
      match
        Fault.check "pool.task";
        f x
      with
      | v -> v
      | exception (Fault.Injected { site; _ } as exn)
        when Fault.is_transient exn ->
          if n >= max_attempts then
            raise (Task_failed { site; attempts = n })
          else begin
            Obs.incr retried;
            backoff n;
            attempt (n + 1)
          end
    in
    attempt 1

  type t = {
    jobs : int;
    queue : task Queue.t;
    mutex : Mutex.t;
    has_work : Condition.t;
    mutable closed : bool;
    mutable workers : unit Domain.t array;
  }

  (* True inside a pool worker domain.  A nested [map_array] from within
     a task must not wait on the pool that is running it (the workers it
     would wait for are the ones already busy), so nested use falls back
     to the sequential path — same results, no deadlock. *)
  let in_worker_key = Domain.DLS.new_key (fun () -> false)
  let in_worker () = Domain.DLS.get in_worker_key

  (* Multi-domain runs stop the world at every minor collection, so
     with the default 256k-word minor heap a pool of allocating workers
     spends much of its time in rendezvous — especially when domains
     outnumber cores.  The minor heap size is per-domain and not
     inherited across [Domain.spawn], so every participant (workers
     here, the caller in [create]) enlarges its own, trading a few MB
     per domain for an order of magnitude fewer synchronizations.  GC
     scheduling is invisible to the deterministic map contract, so
     results are unaffected. *)
  let pool_minor_heap_words = 4 * 1024 * 1024

  let enlarge_minor_heap () =
    let g = Gc.get () in
    if g.Gc.minor_heap_size < pool_minor_heap_words then
      Gc.set { g with Gc.minor_heap_size = pool_minor_heap_words }

  let worker t =
    enlarge_minor_heap ();
    Domain.DLS.set in_worker_key true;
    let rec loop () =
      Mutex.lock t.mutex;
      let rec dequeue () =
        if t.closed then None
        else
          match Queue.take_opt t.queue with
          | Some task -> Some task
          | None ->
              Condition.wait t.has_work t.mutex;
              dequeue ()
      in
      let task = dequeue () in
      Mutex.unlock t.mutex;
      match task with
      | None -> ()
      | Some task ->
          (* Tasks are wrapped by [map_array] and never raise; the guard
             keeps a buggy direct submission from killing the worker —
             but resource exhaustion must never be masked, and swallowed
             failures must at least leave a trace. *)
          (try task () with
          | (Out_of_memory | Stack_overflow) as exn -> raise exn
          | _ -> Obs.incr drained_failures);
          loop ()
    in
    loop ()

  let create ~jobs =
    if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
    let t =
      {
        jobs;
        queue = Queue.create ();
        mutex = Mutex.create ();
        has_work = Condition.create ();
        closed = false;
        workers = [||];
      }
    in
    (* jobs - 1 spawned domains: the caller's domain joins every map as
       the jobs-th worker, so jobs = 1 spawns nothing and runs inline. *)
    if jobs > 1 then enlarge_minor_heap ();
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let jobs t = t.jobs

  let shutdown t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]

  (* When observability is on, a submitted task reports how long it sat
     in the queue (pool.queue_wait, measured from submit to the moment a
     worker picks it up) and how long it ran (pool.task).  These spans
     describe scheduling, so unlike the experiment-layer counters they
     are NOT invariant under different [jobs] settings. *)
  let instrument task =
    if not (Obs.enabled ()) then task
    else begin
      let submitted_ns = Clock.now_ns () in
      fun () ->
        Obs.record_span "pool.queue_wait" ~start_ns:submitted_ns
          ~stop_ns:(Clock.now_ns ());
        Obs.span "pool.task" task
    end

  let submit t task =
    let task = instrument task in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: submit after shutdown"
    end;
    Queue.add task t.queue;
    Condition.signal t.has_work;
    Mutex.unlock t.mutex

  let map_array t f arr =
    let n = Array.length arr in
    if n = 0 then [||]
    else if t.jobs = 1 || n = 1 || in_worker () then
      Array.map (eval_element f) arr
    else
      Obs.span "pool.map" @@ fun () ->
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure =
        Atomic.make (None : (int * exn * Printexc.raw_backtrace) option)
      in
      let record_failure i exn bt =
        (* Keep the lowest-index failure (see the module comment). *)
        let rec set () =
          let current = Atomic.get failure in
          let keep =
            match current with Some (j, _, _) -> j <= i | None -> false
          in
          if
            (not keep)
            && not (Atomic.compare_and_set failure current (Some (i, exn, bt)))
          then set ()
        in
        set ();
        (* Short-circuit: stop handing out new indices.  Everything
           below the lowest raising index was already claimed (claims
           are monotone), so determinism of the propagated exception is
           unaffected. *)
        if Atomic.get next < n then Atomic.set next n
      in
      let rec drive () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Per-domain claim count: the metrics dump turns these into a
             pool-utilization distribution. *)
          Obs.tick "pool.item";
          (match eval_element f arr.(i) with
          | v -> results.(i) <- Some v
          | exception exn ->
              record_failure i exn (Printexc.get_raw_backtrace ()));
          drive ()
        end
      in
      let helpers = min (t.jobs - 1) (n - 1) in
      let pending = ref helpers in
      let all_done = Condition.create () in
      for _ = 1 to helpers do
        submit t (fun () ->
            drive ();
            Mutex.lock t.mutex;
            decr pending;
            if !pending = 0 then Condition.broadcast all_done;
            Mutex.unlock t.mutex)
      done;
      drive ();
      Mutex.lock t.mutex;
      while !pending > 0 do
        Condition.wait all_done t.mutex
      done;
      Mutex.unlock t.mutex;
      (match Atomic.get failure with
      | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ());
      Array.map (function Some v -> v | None -> assert false) results

  let map_list t f l = Array.to_list (map_array t f (Array.of_list l))
end

let run ~jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)
