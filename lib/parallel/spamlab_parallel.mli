(** Deterministic domain pool for fanning independent experiment cells
    (folds, targets, trials) across OCaml 5 domains.

    Determinism contract: [Pool.map_array pool f arr] equals
    [Array.map f arr] — same values, same order, same exception — at
    every [jobs] setting, provided [f] is pure per element (in the
    laboratory, tasks derive their randomness from named
    {!Spamlab_stats.Rng.split_named} streams rather than sharing a
    mutable generator). *)

val validate_jobs : int -> (int, string) result
(** [Ok n] when [n >= 1]; otherwise [Error msg] with the one shared
    jobs-validation message used by every entry point ([--jobs] flags,
    [SPAMLAB_JOBS], {!Spamlab_eval.Lab.create}). *)

val parse_jobs : string -> (int, string) result
(** {!validate_jobs} composed with integer parsing (leading/trailing
    whitespace tolerated); the [Error] message is the same shared one. *)

val default_jobs : unit -> int
(** The [SPAMLAB_JOBS] environment variable if set (via
    {!parse_jobs}), otherwise [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [SPAMLAB_JOBS] does not parse as a
    positive int. *)

exception Task_failed of { site : string; attempts : int }
(** A pool task kept failing with transient faults through every
    supervised attempt.  Carries the fault site and the total attempt
    count; propagates from {!Pool.map_array} via the usual
    lowest-raising-index rule. *)

val max_attempts : int
(** Total attempts per element under supervision (first run plus
    retries); currently 3. *)

module Pool : sig
  type t

  val create : jobs:int -> t
  (** Spawn [jobs - 1] worker domains ([jobs = 1] spawns none and every
      map runs inline).  @raise Invalid_argument if [jobs < 1]. *)

  val jobs : t -> int

  val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
  (** Order-preserving parallel map.  The calling domain participates,
      so all [jobs] domains compute.  If any [f] raises, the exception
      of the lowest raising index is re-raised at the join (with its
      backtrace); which exception propagates does not depend on
      scheduling.  Nested calls from inside a worker fall back to the
      sequential path rather than deadlocking.

      Every element is evaluated under task supervision: the
      {!Spamlab_fault} site ["pool.task"] is checked before each
      attempt, and faults classified transient
      ({!Spamlab_fault.is_transient}) are retried with a deterministic
      [Domain.cpu_relax] backoff, up to {!max_attempts} total attempts
      — each retry bumps the [fault.retried] obs counter.  An element
      still failing transiently after the last attempt raises
      {!Task_failed}.  Supervision applies identically on the
      sequential fallback path, so retried runs remain
      jobs-invariant.

      When {!Spamlab_obs.Obs} is enabled, parallel maps record a
      [pool.map] span, each submitted helper records [pool.queue_wait]
      and [pool.task] spans, and every claimed element ticks a
      per-domain [pool.item] count.  These describe scheduling and are
      {e not} invariant under different [jobs] settings (the
      experiment-layer counters are). *)

  val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

  val shutdown : t -> unit
  (** Stop and join the workers.  Maps submitted afterwards raise. *)
end

val run : jobs:int -> (Pool.t -> 'a) -> 'a
(** [run ~jobs f] creates a pool, applies [f], and shuts the pool down
    (also on exception). *)
