(** Multi-tenant token store: per-user Bayes state behind one
    abstraction, at mailbox counts the single-filter pipeline cannot
    reach.

    Production SpamBayes/SpamAssassin deployments keep {e per-user}
    token statistics (cf. SpamAssassin's [bayes_token]/[bayes_vars]
    tables keyed by user id); everything upstream of this module — the
    daemon, the tenants experiment, the store bench — addresses Bayes
    state as [(user, token)], and this module decides where that state
    lives:

    - {b Memory backend} ([`Memory]): a hashtable of full
      {!Spamlab_spambayes.Token_db} copy-on-write overlays, no
      persistence, no eviction.  The semantic reference — the
      differential test suite asserts the sharded backend produces
      byte-for-byte identical classify/train/untrain behaviour.

    - {b Sharded backend} ([`Sharded dir]): users are hashed (FNV-1a)
      to [N] shards.  Each shard owns two files in [dir]:

      {ul
      {- [shard-NNNN.seg] — the {e segment}: every persisted tenant's
         absolute state (its own message totals and the counts of every
         token where it differs from the shared global prior), sorted
         by user then token, CRC-32-guarded by a footer exactly like
         the v3 token-db format, and replaced only by atomic
         temp+fsync+rename.}
      {- [shard-NNNN.journal] — an append-only op log (torn-tail
         tolerant like [Eval.Checkpoint]): each TRAIN/UNTRAIN lands
         here as one per-line-CRC'd record; [C] commit markers bound
         the durable prefix.  On open the journal is truncated back to
         its last commit marker — an uncommitted suffix was never
         acknowledged to any client, and the daemon's replay contract
         re-delivers it — and replayed over the segment.  The journal
         header records the CRC of the segment it applies over, so a
         crash {e between} the two renames of a compaction leaves a
         journal that no longer matches its segment and is discarded
         instead of double-applied.}}

      Hot users are held in a per-shard LRU of copy-on-write overlays
      over one shared global-prior [Token_db] — materializing a tenant
      costs O(|its touched tokens|) (one segment-extent read plus a
      replay of its journaled ops), never a full database copy.  When
      a shard's journal outgrows [compact_ratio] × its segment, commit
      folds the journal into a fresh segment.

    {2 Fault sites}

    [store.journal.append] fires before an op record is buffered (and
    before the overlay mutates), [store.compact] before a compaction
    touches anything, [store.evict] before an LRU eviction.  A crash
    kind at any of them leaves a store that the next open recovers to
    the last committed state.

    {2 Concurrency}

    All tenant operations serialize per shard (one mutex each);
    distinct shards proceed in parallel.  The store itself never
    spawns domains.

    {2 Determinism}

    Nothing wall-clock or schedule-dependent reaches the files: no
    timestamps, no generation counters, tokens resolved to strings and
    sorted.  Two runs that performed the same committed ops and then
    compacted hold byte-identical segments, journals, manifest, and
    prior — the property ci.sh's crash-and-replay gate checks. *)

module Token_db := Spamlab_spambayes.Token_db

type t

type backend = [ `Memory | `Sharded of string ]

type config = {
  backend : backend;
  shards : int;  (** Segment/journal pairs; fixed at store creation. *)
  cache : int;
      (** Max cached overlays across all shards (each shard gets
          [max 1 (cache / shards)] slots). *)
  compact_ratio : float;
      (** Commit compacts a shard when
          [journal bytes > ratio * max 1 segment bytes]. *)
}

val default_config : config
(** [`Memory], 16 shards, 4096 cached overlays, ratio 4.0. *)

val open_store :
  ?options:Spamlab_spambayes.Options.t ->
  ?prior:Token_db.t ->
  config ->
  (t, string) result
(** Open (or create) a store.  The global prior — the state every
    tenant starts from — is [?prior] (default empty) when creating;
    reopening an existing sharded store loads the prior persisted in
    [dir/prior.db] and {e ignores} [?prior].  [?options] (default
    {!Spamlab_spambayes.Options.default}) parameterizes the shared
    prior probability cache behind {!with_user_engine}; pass the same
    options the engines will be scored under.  Shard files are read
    lazily, on the first operation that touches the shard; a corrupt
    segment or journal header surfaces as [Sys_error] from that
    operation (run [spamlab db verify] on the directory).  [Error] on
    an unusable directory or manifest. *)

val close : t -> unit
(** {!commit} (without forced compaction), then release descriptors.
    The store must not be used afterwards. *)

val prior : t -> Token_db.t
(** The shared global prior.  Must not be mutated. *)

val nshards : t -> int

val is_sharded : t -> bool

val with_user : t -> string -> (Token_db.t -> 'a) -> 'a
(** [with_user t user f] runs [f] on [user]'s overlay database under
    the shard lock — the read path (classify, score inspection).  [f]
    must not retain or mutate the db. *)

val with_user_engine :
  t -> string -> (Spamlab_spambayes.Classify.engine -> 'a) -> 'a
(** [with_user t user] handing [f] a scoring engine instead of the raw
    overlay db: tokens where the tenant does not diverge from the
    global prior (the overwhelming majority — overlays are tiny by
    design) read the store's shared prior probability cache; diverging
    tokens, and every token once the tenant's own message totals have
    shifted, recompute from the overlay counts.  Results are
    bit-identical to scoring the overlay db uncached.  Same locking
    contract as {!with_user}; the engine must not escape [f]. *)

val train : t -> user:string -> Spamlab_spambayes.Label.gold -> string array -> unit
(** Journal and apply one training message for [user].  [tokens] are
    the message's distinct tokens; duplicates are collapsed (a message
    contributes each token once, whatever its occurrence count).  Ops
    mutate only the user's overlay, never the prior. *)

val train_many :
  t -> user:string -> Spamlab_spambayes.Label.gold -> string array -> int -> unit
(** [k] identical messages in one op record (the poisoning pattern).
    @raise Invalid_argument if [k < 0]. *)

val untrain :
  t -> user:string -> Spamlab_spambayes.Label.gold -> string array -> unit
(** Inverse of {!train}.  Validation precedes any mutation {e and} any
    journaling, so a failed untrain leaves both memory and disk
    untouched.
    @raise Invalid_argument if the message was never trained. *)

val commit : t -> unit
(** Durability point: flush every shard's buffered op records, append
    commit markers, fsync, and compact any shard whose journal exceeds
    [compact_ratio].  No-op on the memory backend. *)

val compact_all : t -> unit
(** {!commit}, then fold {e every} shard's journal into its segment
    regardless of ratio — the canonical-bytes form (explicit PUBLISH,
    end of an experiment).  No-op on the memory backend. *)

val evict_all : t -> unit
(** Drop every cached overlay (state is already journaled; the next
    access per user is a cold materialization).  Bench/test hook; does
    not fire [store.evict]. *)

type stats = {
  hits : int;  (** Overlay cache hits. *)
  misses : int;  (** Cold materializations. *)
  evictions : int;  (** LRU evictions (capacity pressure only). *)
  journal_bytes : int;  (** Op-record bytes appended (monotonic). *)
  journal_ops : int;  (** Op records appended (monotonic). *)
  compactions : int;
  cached : int;  (** Overlays currently cached. *)
}

val stats : t -> stats
(** Snapshot of this store's internal counters (also mirrored to
    [lib/obs] counters [store.*] when observability is enabled; these
    internal ones answer even with obs disabled). *)

(** {2 Offline verification} — backs [spamlab db verify] on a store
    directory.  Read-only; never opens the store. *)

type shard_report = {
  shard : int;
  seg_users : int;
  seg_rows : int;
  segment : [ `Ok | `Missing | `Corrupt of string ];
  journal :
    [ `Ok of int  (** committed op records *)
    | `Torn of int * int
      (** committed op records, salvageable uncommitted suffix records
          (valid lines past the last commit marker, before the torn
          tail) *)
    | `Stale  (** header's seg_crc does not match the segment: a
                  compaction crashed between its two renames; the next
                  open discards this journal (ops already live in the
                  segment) *)
    | `Missing
    | `Corrupt of string ];
}

type dir_report = {
  dir_shards : int;
  dir_users : int;
  dir_rows : int;
  dir_ops : int;  (** committed op records across all journals *)
  shard_reports : shard_report list;
  prior_ok : (Token_db.verify_report, string) result;
}

val verify_dir : string -> (dir_report, string) result
(** Verify every shard's segment (v3-style CRC footer + invariants:
    sorted users, sorted rows, non-negative counts, consistent user/row
    totals) and journal (header, per-line CRCs, commit markers, torn
    tail).  [Error] only when the directory or manifest is unusable;
    per-shard damage is reported in the shard list.  A shard is {e bad}
    — [spamlab db verify] exits nonzero — when its segment or journal
    is [`Corrupt]; [`Torn] tails and [`Stale] journals are recoverable
    by design and only reported. *)

val is_store_dir : string -> bool
(** True when [dir/manifest] names a spamlab store (cheap sniff used by
    [spamlab db verify] to dispatch file vs directory). *)
