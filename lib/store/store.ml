module Sb = Spamlab_spambayes
module Token_db = Sb.Token_db
module Intern = Sb.Intern
module Label = Sb.Label
module Options = Sb.Options
module Classify = Sb.Classify
module Prob_cache = Sb.Prob_cache
module Fault = Spamlab_fault
module Obs = Spamlab_obs.Obs
module Io = Spamlab_io

let c_hits = Obs.counter "store.overlay_hits"
let c_misses = Obs.counter "store.overlay_misses"
let c_evictions = Obs.counter "store.evictions"
let c_journal_bytes = Obs.counter "store.journal_bytes"
let c_journal_ops = Obs.counter "store.journal_ops"
let c_compactions = Obs.counter "store.compactions"

type backend = [ `Memory | `Sharded of string ]

type config = {
  backend : backend;
  shards : int;
  cache : int;
  compact_ratio : float;
}

let default_config =
  { backend = `Memory; shards = 16; cache = 4096; compact_ratio = 4.0 }

(* ------------------------------------------------------------------ *)
(* On-disk dialect.  Every format here reuses the token-db v3
   conventions — escaped fields, tab separators, CRC-32 (IEEE) — so the
   whole tree speaks one dialect. *)

let manifest_magic = "spamlab-store"
let seg_magic = "spamlab-store-seg"
let jrn_magic = "spamlab-store-journal"
let seg_footer_prefix = "#spamlab-store-footer "
let crc_of s = Token_db.crc_finish (Token_db.crc_feed Token_db.crc_init s)
let manifest_path dir = Filename.concat dir "manifest"
let prior_path dir = Filename.concat dir "prior.db"

let seg_path dir s = Filename.concat dir (Printf.sprintf "shard-%04d.seg" s)

let jrn_path dir s =
  Filename.concat dir (Printf.sprintf "shard-%04d.journal" s)

(* 32-bit FNV-1a: the user-to-shard hash.  Process-independent and
   stable across runs, unlike interned ids. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
      Fun.protect
        ~finally:(fun () -> Unix.close dirfd)
        (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())

(* Crash-safe file replacement, same shape as [Filter.save_file]:
   temp + fsync + rename + best-effort directory fsync. *)
let atomic_write path data =
  let tmp = path ^ ".tmp" in
  let write () =
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Io.really_write_string fd data 0 (String.length data);
        Unix.fsync fd)
  in
  (match write () with
  | () -> ()
  | exception exn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (In_channel.input_all ic))

let next_line data pos =
  if pos >= String.length data then None
  else
    match String.index_from_opt data pos '\n' with
    | None -> None (* torn final line: treated as absent by all callers *)
    | Some nl -> Some (String.sub data pos (nl - pos), nl + 1)

(* ------------------------------------------------------------------ *)
(* Journal records.  One op per line, each line carrying its own CRC so
   a torn or bit-flipped tail is detected record-by-record:

     T \t user \t s|h \t k \t tok ... \t crc=XXXXXXXX
     U \t user \t s|h \t tok ...      \t crc=XXXXXXXX
     C \t crc=XXXXXXXX

   The CRC covers every byte of the line up to and including the tab
   that precedes it. *)

type op = {
  op_kind : [ `Train | `Untrain ];
  op_label : Label.gold;
  op_k : int;
  op_tokens : string array;
}

let op_line kind user label k tokens =
  let b = Buffer.create 128 in
  Buffer.add_string b (match kind with `Train -> "T" | `Untrain -> "U");
  Buffer.add_char b '\t';
  Buffer.add_string b (Token_db.escape_token user);
  Buffer.add_char b '\t';
  Buffer.add_char b (match label with Label.Spam -> 's' | Label.Ham -> 'h');
  (match kind with
  | `Train ->
      Buffer.add_char b '\t';
      Buffer.add_string b (string_of_int k)
  | `Untrain -> ());
  Array.iter
    (fun tok ->
      Buffer.add_char b '\t';
      Buffer.add_string b (Token_db.escape_token tok))
    tokens;
  Buffer.add_char b '\t';
  let prefix = Buffer.contents b in
  Printf.sprintf "%scrc=%08x\n" prefix (crc_of prefix)

let commit_line = Printf.sprintf "C\tcrc=%08x\n" (crc_of "C\t")

let parse_label = function
  | "s" -> Some Label.Spam
  | "h" -> Some Label.Ham
  | _ -> None

(* Parse one journal line (without its newline). *)
let parse_op_line line =
  let n = String.length line in
  (* ...\tcrc=XXXXXXXX — 13 tail bytes including the tab. *)
  if n < 14 || line.[n - 13] <> '\t' || String.sub line (n - 12) 4 <> "crc="
  then `Bad "missing crc field"
  else
    match int_of_string_opt ("0x" ^ String.sub line (n - 8) 8) with
    | None -> `Bad "bad crc field"
    | Some crc ->
        let prefix = String.sub line 0 (n - 12) in
        if crc_of prefix <> crc then `Bad "crc mismatch"
        else
          let body = String.sub line 0 (n - 13) in
          let unescape s =
            match Token_db.unescape_token s with
            | Ok s -> s
            | Error e -> raise (Sys_error e)
          in
          let parse () =
            match String.split_on_char '\t' body with
            | [ "C" ] -> `Commit
            | "T" :: user :: cls :: k :: toks -> (
                match (parse_label cls, int_of_string_opt k) with
                | Some label, Some k when k >= 0 ->
                    `Op
                      ( unescape user,
                        {
                          op_kind = `Train;
                          op_label = label;
                          op_k = k;
                          op_tokens =
                            Array.map unescape (Array.of_list toks);
                        } )
                | _ -> `Bad "bad train record")
            | "U" :: user :: cls :: toks -> (
                match parse_label cls with
                | Some label ->
                    `Op
                      ( unescape user,
                        {
                          op_kind = `Untrain;
                          op_label = label;
                          op_k = 1;
                          op_tokens =
                            Array.map unescape (Array.of_list toks);
                        } )
                | None -> `Bad "bad untrain record")
            | _ -> `Bad "unknown record"
          in
          (match parse () with
          | r -> r
          | exception Sys_error e -> `Bad e)

(* ------------------------------------------------------------------ *)
(* Shard state. *)

type extent = { e_off : int; e_len : int }

type node = {
  n_user : string;
  n_db : Token_db.t;
  mutable n_prev : node option;
  mutable n_next : node option;
}

type shard = {
  sh_id : int;
  sh_lock : Mutex.t;
  mutable sh_inited : bool;
  sh_index : (string, extent) Hashtbl.t;
      (* user -> byte extent of its block in the segment *)
  sh_pending : (string, extent list ref) Hashtbl.t;
      (* user -> journal op extents, newest first *)
  sh_buf : Buffer.t; (* op records not yet written to the journal fd *)
  mutable sh_jlen : int; (* journal bytes on disk *)
  mutable sh_jhdr : int; (* journal header length *)
  mutable sh_last_commit : int; (* offset just past the last C marker *)
  mutable sh_jfd : Unix.file_descr option;
  mutable sh_sfd : Unix.file_descr option;
  mutable sh_seg_crc : int; (* segment footer CRC (0 when absent) *)
  mutable sh_seg_len : int;
  sh_cache : (string, node) Hashtbl.t;
  mutable sh_head : node option; (* most recently used *)
  mutable sh_tail : node option;
}

type t = {
  cfg : config;
  dir : string option;
  t_nshards : int;
  cache_per_shard : int;
  t_prior : Token_db.t;
  (* Shared probability cache over the immutable global prior: every
     tenant engine scores its non-diverging tokens through this one
     cache (concurrently, across shards — safe because it is
     single-generation over a db nothing mutates). *)
  t_prior_cache : Prob_cache.t;
  shards : shard array;
  mem : (string, Token_db.t) Hashtbl.t;
  mem_lock : Mutex.t;
  s_hits : int Atomic.t;
  s_misses : int Atomic.t;
  s_evictions : int Atomic.t;
  s_journal_bytes : int Atomic.t;
  s_journal_ops : int Atomic.t;
  s_compactions : int Atomic.t;
}

let prior t = t.t_prior
let nshards t = t.t_nshards
let is_sharded t = t.dir <> None

let fresh_shard id =
  {
    sh_id = id;
    sh_lock = Mutex.create ();
    sh_inited = false;
    sh_index = Hashtbl.create 64;
    sh_pending = Hashtbl.create 64;
    sh_buf = Buffer.create 1024;
    sh_jlen = 0;
    sh_jhdr = 0;
    sh_last_commit = 0;
    sh_jfd = None;
    sh_sfd = None;
    sh_seg_crc = 0;
    sh_seg_len = 0;
    sh_cache = Hashtbl.create 16;
    sh_head = None;
    sh_tail = None;
  }

(* ------------------------------------------------------------------ *)
(* LRU plumbing (per shard, lock held). *)

let lru_unlink sh n =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> sh.sh_head <- n.n_next);
  (match n.n_next with
  | Some nx -> nx.n_prev <- n.n_prev
  | None -> sh.sh_tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let lru_push_front sh n =
  n.n_prev <- None;
  n.n_next <- sh.sh_head;
  (match sh.sh_head with Some h -> h.n_prev <- Some n | None -> ());
  sh.sh_head <- Some n;
  if sh.sh_tail = None then sh.sh_tail <- Some n

let lru_touch sh n =
  if sh.sh_head != Some n then begin
    lru_unlink sh n;
    lru_push_front sh n
  end

(* ------------------------------------------------------------------ *)
(* Segment parsing (open path: build the extent index and check the
   footer CRC; full invariant validation lives in [verify_dir]). *)

let seg_fail sh_id fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Sys_error (Printf.sprintf "store shard %d segment: %s" sh_id msg)))
    fmt

let parse_user_line line =
  match String.split_on_char '\t' line with
  | [ "u"; eu; ns; nh; nr ] -> (
      match
        ( Token_db.unescape_token eu,
          int_of_string_opt ns,
          int_of_string_opt nh,
          int_of_string_opt nr )
      with
      | Ok user, Some nspam, Some nham, Some nrows
        when nspam >= 0 && nham >= 0 && nrows >= 0 ->
          Some (user, nspam, nham, nrows)
      | _ -> None)
  | _ -> None

let parse_seg_header ~expect_shard ~expect_nshards line =
  match String.split_on_char ' ' line with
  | [ magic; v; sid; ns; nusers ] when magic = seg_magic -> (
      match
        ( int_of_string_opt v,
          int_of_string_opt sid,
          int_of_string_opt ns,
          int_of_string_opt nusers )
      with
      | Some 1, Some sid, Some ns, Some nusers
        when (expect_shard < 0 || sid = expect_shard)
             && (expect_nshards < 0 || ns = expect_nshards)
             && nusers >= 0 ->
          Ok (sid, ns, nusers)
      | Some 1, _, _, _ -> Error "header does not match shard/manifest"
      | _ -> Error "unsupported segment version or bad header")
  | _ -> Error "not a spamlab store segment"

let parse_seg_footer line =
  Scanf.sscanf_opt line "#spamlab-store-footer crc32=%x users=%d rows=%d%!"
    (fun crc users rows -> (crc, users, rows))

(* Walk a segment's bytes, calling [on_user user nspam nham nrows off len
   rows_off] per user block ([off,len] spans the whole block, [rows_off]
   the first row line).  Returns (footer_crc, users, rows) after
   checking the footer against the walked bytes. *)
let walk_segment ~expect_shard ~expect_nshards data ~on_user =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match next_line data 0 with
  | None -> Error "truncated segment header"
  | Some (hdr, p0) -> (
      match parse_seg_header ~expect_shard ~expect_nshards hdr with
      | Error e -> Error e
      | Ok (_, _, nusers) ->
          let pos = ref p0 in
          let users = ref 0 and rows = ref 0 in
          let result = ref None in
          let err = ref None in
          (try
             while !result = None && !err = None do
               match next_line data !pos with
               | None -> err := Some "truncated segment: missing footer"
               | Some (line, nxt) ->
                   if String.starts_with ~prefix:seg_footer_prefix line then (
                     match parse_seg_footer line with
                     | None -> err := Some (Printf.sprintf "bad footer %S" line)
                     | Some (fcrc, fusers, frows) ->
                         if nxt <> String.length data then
                           err := Some "content after segment footer"
                         else if fusers <> !users || frows <> !rows then
                           err :=
                             Some
                               (Printf.sprintf
                                  "footer counts users=%d rows=%d, walked \
                                   %d/%d"
                                  fusers frows !users !rows)
                         else if fusers <> nusers then
                           err := Some "header/footer user count mismatch"
                         else if fcrc <> crc_of (String.sub data 0 !pos) then
                           err :=
                             Some
                               "segment checksum mismatch: corrupted or \
                                truncated"
                         else result := Some (fcrc, fusers, frows))
                   else
                     match parse_user_line line with
                     | None ->
                         err := Some (Printf.sprintf "bad user line %S" line)
                     | Some (user, nspam, nham, nrows) ->
                         let ustart = !pos in
                         let rows_off = nxt in
                         let p = ref nxt in
                         for _ = 1 to nrows do
                           match next_line data !p with
                           | None ->
                               failwith "truncated segment: missing row"
                           | Some (_, n') -> p := n'
                         done;
                         on_user user nspam nham nrows ustart (!p - ustart)
                           rows_off;
                         incr users;
                         rows := !rows + nrows;
                         pos := !p
             done
           with Failure m -> err := Some m);
          (match (!result, !err) with
          | Some r, _ -> Ok r
          | None, Some e -> fail "%s" e
          | None, None -> fail "internal segment walk error"))

(* Parse one user block (the bytes of its extent) into an overlay. *)
let apply_block db block =
  match next_line block 0 with
  | None -> raise (Sys_error "store: truncated user block")
  | Some (uline, p0) -> (
      match parse_user_line uline with
      | None -> raise (Sys_error "store: bad user block header")
      | Some (_, nspam, nham, nrows) ->
          Token_db.set_message_counts db ~nspam ~nham;
          let pos = ref p0 in
          for _ = 1 to nrows do
            match next_line block !pos with
            | None -> raise (Sys_error "store: truncated user block")
            | Some (line, nxt) -> (
                pos := nxt;
                match String.split_on_char '\t' line with
                | [ etok; s; h ] -> (
                    match
                      ( Token_db.unescape_token etok,
                        int_of_string_opt s,
                        int_of_string_opt h )
                    with
                    | Ok tok, Some spam, Some ham when spam >= 0 && ham >= 0
                      ->
                        Token_db.set_counts_id db (Intern.id tok) ~spam ~ham
                    | _ -> raise (Sys_error "store: bad row in user block"))
                | _ -> raise (Sys_error "store: bad row in user block"))
          done)

let apply_op db op =
  let ids = Intern.intern_array op.op_tokens in
  match op.op_kind with
  | `Train -> Token_db.train_many_ids db op.op_label ids op.op_k
  | `Untrain -> Token_db.untrain_ids db op.op_label ids

(* ------------------------------------------------------------------ *)
(* Shard open: read the segment into an extent index, then recover the
   journal — validate the header against the segment's CRC (a stale
   journal means a compaction crashed between its two renames and its
   ops already live in the segment: drop it), scan records up to the
   last commit marker, and truncate the uncommitted suffix (it was
   never acknowledged; the client replay contract re-delivers it). *)

let jrn_header ~shard ~nshards ~seg_crc =
  Printf.sprintf "%s 1 %d %d seg_crc=%08x\n" jrn_magic shard nshards seg_crc

let parse_jrn_header line =
  match String.split_on_char ' ' line with
  | [ magic; v; sid; ns; crc ] when magic = jrn_magic -> (
      match
        ( int_of_string_opt v,
          int_of_string_opt sid,
          int_of_string_opt ns,
          Scanf.sscanf_opt crc "seg_crc=%x%!" (fun c -> c) )
      with
      | Some 1, Some sid, Some ns, Some crc -> Ok (sid, ns, crc)
      | _ -> Error "unsupported journal version or bad header")
  | _ -> Error "not a spamlab store journal"

let init_shard t sh =
  if not sh.sh_inited then begin
    let dir = Option.get t.dir in
    let spath = seg_path dir sh.sh_id in
    (match read_file spath with
    | None ->
        sh.sh_seg_crc <- 0;
        sh.sh_seg_len <- 0
    | Some data -> (
        match
          walk_segment ~expect_shard:sh.sh_id ~expect_nshards:t.t_nshards data
            ~on_user:(fun user _ _ _ off len _ ->
              Hashtbl.replace sh.sh_index user { e_off = off; e_len = len })
        with
        | Error e -> seg_fail sh.sh_id "%s" e
        | Ok (crc, _, _) ->
            sh.sh_seg_crc <- crc;
            sh.sh_seg_len <- String.length data;
            sh.sh_sfd <- Some (Unix.openfile spath [ O_RDONLY ] 0)));
    let jpath = jrn_path dir sh.sh_id in
    let fresh () =
      let hdr =
        jrn_header ~shard:sh.sh_id ~nshards:t.t_nshards ~seg_crc:sh.sh_seg_crc
      in
      atomic_write jpath hdr;
      sh.sh_jhdr <- String.length hdr;
      sh.sh_jlen <- String.length hdr;
      sh.sh_last_commit <- String.length hdr
    in
    (match read_file jpath with
    | None -> fresh ()
    | Some data -> (
        match next_line data 0 with
        | None -> fresh () (* empty or torn-headed journal: reset *)
        | Some (hdr, p0) -> (
            match parse_jrn_header hdr with
            | Error e ->
                raise
                  (Sys_error
                     (Printf.sprintf "store shard %d journal: %s" sh.sh_id e))
            | Ok (sid, ns, seg_crc) ->
                if sid <> sh.sh_id || ns <> t.t_nshards then
                  raise
                    (Sys_error
                       (Printf.sprintf
                          "store shard %d journal: header does not match \
                           shard/manifest"
                          sh.sh_id))
                else if seg_crc <> sh.sh_seg_crc then
                  (* Stale: compaction crashed after the segment rename,
                     before the journal rename.  Its ops are already in
                     the segment. *)
                  fresh ()
                else begin
                  sh.sh_jhdr <- p0;
                  let pos = ref p0 in
                  let last_commit = ref p0 in
                  let scanned = ref [] in
                  (try
                     let continue = ref true in
                     while !continue do
                       match next_line data !pos with
                       | None -> continue := false
                       | Some (line, nxt) -> (
                           match parse_op_line line with
                           | `Commit ->
                               last_commit := nxt;
                               pos := nxt
                           | `Op (user, _) ->
                               scanned :=
                                 ( user,
                                   {
                                     e_off = !pos;
                                     e_len = String.length line;
                                   } )
                                 :: !scanned;
                               pos := nxt
                           | `Bad _ -> continue := false)
                     done
                   with Sys_error _ -> ());
                  if String.length data > !last_commit then
                    Unix.truncate jpath !last_commit;
                  List.iter
                    (fun (user, ext) ->
                      if ext.e_off < !last_commit then
                        let r =
                          match Hashtbl.find_opt sh.sh_pending user with
                          | Some r -> r
                          | None ->
                              let r = ref [] in
                              Hashtbl.replace sh.sh_pending user r;
                              r
                        in
                        r := ext :: !r)
                    (List.rev !scanned);
                  sh.sh_jlen <- !last_commit;
                  sh.sh_last_commit <- !last_commit
                end)));
    sh.sh_jfd <- Some (Unix.openfile jpath [ O_RDWR ] 0o644);
    sh.sh_inited <- true
  end

(* ------------------------------------------------------------------ *)
(* Journal buffering.  Records accumulate in memory and hit the fd on
   flush (cold loads flush first so every extent is readable); fsync
   happens only at commit. *)

let flush_shard sh =
  if Buffer.length sh.sh_buf > 0 then begin
    let data = Buffer.contents sh.sh_buf in
    let fd = Option.get sh.sh_jfd in
    ignore (Unix.lseek fd 0 SEEK_END);
    Io.really_write_string fd data 0 (String.length data);
    sh.sh_jlen <- sh.sh_jlen + String.length data;
    Buffer.clear sh.sh_buf
  end

let pread fd off len =
  let buf = Bytes.create len in
  ignore (Unix.lseek fd off SEEK_SET);
  Io.really_read fd buf 0 len;
  Bytes.unsafe_to_string buf

(* Materialize a tenant: CoW copy of the shared prior (O(1): the prior's
   overlay is empty), its segment block, then its journaled ops in
   order.  Never a full database copy. *)
let materialize t sh user =
  flush_shard sh;
  let db = Token_db.copy t.t_prior in
  (match Hashtbl.find_opt sh.sh_index user with
  | Some e ->
      apply_block db (pread (Option.get sh.sh_sfd) e.e_off e.e_len)
  | None -> ());
  (match Hashtbl.find_opt sh.sh_pending user with
  | Some exts ->
      let jfd = Option.get sh.sh_jfd in
      List.iter
        (fun e ->
          match parse_op_line (pread jfd e.e_off e.e_len) with
          | `Op (_, op) -> apply_op db op
          | `Commit | `Bad _ ->
              raise
                (Sys_error
                   (Printf.sprintf
                      "store shard %d journal: unreadable record at %d"
                      sh.sh_id e.e_off)))
        (List.rev !exts)
  | None -> ());
  db

let evict_one t sh =
  match sh.sh_tail with
  | None -> ()
  | Some n ->
      Fault.check "store.evict";
      lru_unlink sh n;
      Hashtbl.remove sh.sh_cache n.n_user;
      Atomic.incr t.s_evictions;
      Obs.incr c_evictions

(* The cached overlay for [user], shard lock held. *)
let overlay t sh user =
  match Hashtbl.find_opt sh.sh_cache user with
  | Some n ->
      lru_touch sh n;
      Atomic.incr t.s_hits;
      Obs.incr c_hits;
      n.n_db
  | None ->
      Atomic.incr t.s_misses;
      Obs.incr c_misses;
      let db = materialize t sh user in
      if Hashtbl.length sh.sh_cache >= t.cache_per_shard then evict_one t sh;
      let n = { n_user = user; n_db = db; n_prev = None; n_next = None } in
      Hashtbl.replace sh.sh_cache user n;
      lru_push_front sh n;
      db

(* ------------------------------------------------------------------ *)
(* Compaction: fold segment + journal into a fresh segment.  Two atomic
   renames — segment first, then a header-only journal stamped with the
   new segment's CRC.  A crash between them leaves a journal whose
   seg_crc no longer matches; the next open discards it (see
   [init_shard]).  The bytes are canonical: users sorted, rows sorted,
   no generation counters or timestamps, so independent runs that
   performed the same ops compact to identical files. *)

let user_block prior db user =
  let rows =
    Token_db.fold_overlay
      (fun acc id ~spam ~ham ->
        let ps = Token_db.spam_count_id prior id
        and ph = Token_db.ham_count_id prior id in
        if spam <> ps || ham <> ph then
          (Intern.to_string id, spam, ham) :: acc
        else acc)
      [] db
  in
  let rows =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows
  in
  let nspam = Token_db.nspam db and nham = Token_db.nham db in
  if
    rows = []
    && nspam = Token_db.nspam prior
    && nham = Token_db.nham prior
  then None
  else begin
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "u\t%s\t%d\t%d\t%d\n"
         (Token_db.escape_token user)
         nspam nham (List.length rows));
    List.iter
      (fun (tok, spam, ham) ->
        Buffer.add_string b
          (Printf.sprintf "%s\t%d\t%d\n" (Token_db.escape_token tok) spam ham))
      rows;
    Some (Buffer.contents b, List.length rows)
  end

let compact_shard t sh =
  Fault.check "store.compact";
  flush_shard sh;
  let dir = Option.get t.dir in
  let users = Hashtbl.create (Hashtbl.length sh.sh_index) in
  Hashtbl.iter (fun u _ -> Hashtbl.replace users u ()) sh.sh_index;
  Hashtbl.iter (fun u _ -> Hashtbl.replace users u ()) sh.sh_pending;
  let sorted =
    List.sort String.compare (Hashtbl.fold (fun u () acc -> u :: acc) users [])
  in
  let blocks =
    List.filter_map
      (fun user ->
        let db =
          match Hashtbl.find_opt sh.sh_cache user with
          | Some n -> n.n_db
          | None -> materialize t sh user
        in
        Option.map
          (fun (block, rows) -> (user, block, rows))
          (user_block t.t_prior db user))
      sorted
  in
  let header =
    Printf.sprintf "%s 1 %d %d %d\n" seg_magic sh.sh_id t.t_nshards
      (List.length blocks)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  let new_index = Hashtbl.create (List.length blocks) in
  let rows_total = ref 0 in
  List.iter
    (fun (user, block, rows) ->
      Hashtbl.replace new_index user
        { e_off = Buffer.length b; e_len = String.length block };
      Buffer.add_string b block;
      rows_total := !rows_total + rows)
    blocks;
  let crc = crc_of (Buffer.contents b) in
  Buffer.add_string b
    (Printf.sprintf "%scrc32=%08x users=%d rows=%d\n" seg_footer_prefix crc
       (List.length blocks) !rows_total);
  let seg = Buffer.contents b in
  let spath = seg_path dir sh.sh_id in
  atomic_write spath seg;
  (* Window: new segment on disk, old journal (stale seg_crc) still in
     place — recovered by the staleness check on open. *)
  let hdr = jrn_header ~shard:sh.sh_id ~nshards:t.t_nshards ~seg_crc:crc in
  atomic_write (jrn_path dir sh.sh_id) hdr;
  Option.iter Unix.close sh.sh_sfd;
  sh.sh_sfd <- Some (Unix.openfile spath [ O_RDONLY ] 0);
  Option.iter Unix.close sh.sh_jfd;
  sh.sh_jfd <- Some (Unix.openfile (jrn_path dir sh.sh_id) [ O_RDWR ] 0o644);
  Hashtbl.reset sh.sh_index;
  Hashtbl.iter (fun u e -> Hashtbl.replace sh.sh_index u e) new_index;
  Hashtbl.reset sh.sh_pending;
  sh.sh_seg_crc <- crc;
  sh.sh_seg_len <- String.length seg;
  sh.sh_jhdr <- String.length hdr;
  sh.sh_jlen <- String.length hdr;
  sh.sh_last_commit <- String.length hdr;
  Atomic.incr t.s_compactions;
  Obs.incr c_compactions

let over_ratio t sh =
  float_of_int (sh.sh_jlen + Buffer.length sh.sh_buf - sh.sh_jhdr)
  > t.cfg.compact_ratio *. float_of_int (max 1 sh.sh_seg_len)

let commit_shard t sh ~force_compact =
  if sh.sh_jlen + Buffer.length sh.sh_buf > sh.sh_last_commit then begin
    Buffer.add_string sh.sh_buf commit_line;
    flush_shard sh;
    Unix.fsync (Option.get sh.sh_jfd);
    sh.sh_last_commit <- sh.sh_jlen
  end;
  if (force_compact && sh.sh_jlen > sh.sh_jhdr) || over_ratio t sh then
    compact_shard t sh

(* ------------------------------------------------------------------ *)
(* Public API. *)

let open_store ?(options = Options.default) ?prior cfg =
  let mk dir prior nshards =
    ignore (Token_db.copy prior);
    (* pre-share: tenant copies are now O(1) and race-free *)
    {
      cfg;
      dir;
      t_nshards = nshards;
      cache_per_shard = max 1 (cfg.cache / max 1 nshards);
      t_prior = prior;
      t_prior_cache = Prob_cache.create ~shared:true options prior;
      shards =
        (match dir with
        | None -> [||]
        | Some _ -> Array.init nshards fresh_shard);
      mem = Hashtbl.create 64;
      mem_lock = Mutex.create ();
      s_hits = Atomic.make 0;
      s_misses = Atomic.make 0;
      s_evictions = Atomic.make 0;
      s_journal_bytes = Atomic.make 0;
      s_journal_ops = Atomic.make 0;
      s_compactions = Atomic.make 0;
    }
  in
  match cfg.backend with
  | `Memory ->
      let prior =
        match prior with Some p -> p | None -> Token_db.create ()
      in
      Ok (mk None prior (max 1 cfg.shards))
  | `Sharded dir -> (
      if cfg.shards < 1 || cfg.shards > 9999 then
        Error "store: shards must be in 1..9999"
      else
        match read_file (manifest_path dir) with
        | Some data -> (
            (* Reopen: the manifest and persisted prior win. *)
            match next_line data 0 with
            | None -> Error "store: truncated manifest"
            | Some (line, _) -> (
                match String.split_on_char ' ' line with
                | [ magic; v; ns ] when magic = manifest_magic -> (
                    match (int_of_string_opt v, int_of_string_opt ns) with
                    | Some 1, Some ns when ns >= 1 && ns <= 9999 -> (
                        match read_file (prior_path dir) with
                        | None -> Error "store: missing prior.db"
                        | Some pdata -> (
                            match Token_db.of_string pdata with
                            | Error e -> Error ("store prior.db: " ^ e)
                            | Ok prior -> Ok (mk (Some dir) prior ns)))
                    | _ -> Error "store: bad manifest"
                    )
                | _ -> Error "store: not a spamlab store directory"))
        | None -> (
            (* Create, including missing parents (a sweep writes
               dir/users-N before anything made dir). *)
            let rec mkdir_p d =
              if not (Sys.file_exists d) then begin
                let parent = Filename.dirname d in
                if parent <> d then mkdir_p parent;
                Unix.mkdir d 0o755
              end
            in
            match mkdir_p dir with
            | () | (exception Unix.Unix_error (Unix.EEXIST, _, _)) ->
                let prior =
                  match prior with Some p -> p | None -> Token_db.create ()
                in
                atomic_write (prior_path dir) (Token_db.to_string prior);
                atomic_write (manifest_path dir)
                  (Printf.sprintf "%s 1 %d\n" manifest_magic cfg.shards);
                Ok (mk (Some dir) prior cfg.shards)
            | exception Unix.Unix_error (e, _, _) ->
                Error
                  (Printf.sprintf "store: cannot create %s: %s" dir
                     (Unix.error_message e))))

let shard_for t user = t.shards.(fnv1a user mod t.t_nshards)

let with_shard t user f =
  let sh = shard_for t user in
  Mutex.protect sh.sh_lock (fun () ->
      init_shard t sh;
      f sh)

let mem_overlay t user =
  match Hashtbl.find_opt t.mem user with
  | Some db ->
      Atomic.incr t.s_hits;
      Obs.incr c_hits;
      db
  | None ->
      Atomic.incr t.s_misses;
      Obs.incr c_misses;
      let db = Token_db.copy t.t_prior in
      Hashtbl.replace t.mem user db;
      db

let with_user t user f =
  match t.dir with
  | None -> Mutex.protect t.mem_lock (fun () -> f (mem_overlay t user))
  | Some _ -> with_shard t user (fun sh -> f (overlay t sh user))

(* The tenant scoring fast path: a fresh overlay engine per locked
   access (its totals comparison is hoisted at creation, so it must
   not outlive the lock), sharing the prior cache across all tenants
   and shards. *)
let with_user_engine t user f =
  with_user t user (fun db -> f (Classify.engine_overlay t.t_prior_cache db))

(* Buffered records auto-flush past this size so a commit-free bulk
   load (the tenants experiment trains 10^5 users before its first
   commit) does not hold the whole journal in memory. *)
let buf_flush_threshold = 1 lsl 20

let sharded_op t user op =
  with_shard t user (fun sh ->
      let db = overlay t sh user in
      Fault.check "store.journal.append";
      let line = op_line op.op_kind user op.op_label op.op_k op.op_tokens in
      let blen = Buffer.length sh.sh_buf in
      let ext = { e_off = sh.sh_jlen + blen; e_len = String.length line - 1 } in
      Buffer.add_string sh.sh_buf line;
      let exts =
        match Hashtbl.find_opt sh.sh_pending user with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace sh.sh_pending user r;
            r
      in
      exts := ext :: !exts;
      (match apply_op db op with
      | () -> ()
      | exception exn ->
          (* An invalid op (e.g. untrain of a never-trained message)
             must leave disk state untouched too. *)
          Buffer.truncate sh.sh_buf blen;
          (exts := match !exts with _ :: tl -> tl | [] -> []);
          if !exts = [] then Hashtbl.remove sh.sh_pending user;
          raise exn);
      Atomic.incr t.s_journal_ops;
      ignore (Atomic.fetch_and_add t.s_journal_bytes (String.length line));
      Obs.incr c_journal_ops;
      Obs.add c_journal_bytes (String.length line);
      if Buffer.length sh.sh_buf > buf_flush_threshold then flush_shard sh)

let mem_op t user op =
  Mutex.protect t.mem_lock (fun () -> apply_op (mem_overlay t user) op)

let run_op t user op =
  match t.dir with
  | None -> mem_op t user op
  | Some _ -> sharded_op t user op

(* A message contributes each token once (SpamBayes counts messages
   containing a token, not occurrences), and the segment verifier's
   count-vs-totals invariant relies on it.  Pipeline callers already
   pass unique tokens ([Tokenizer.unique_tokens], [with_unique_ids]);
   normalize here so direct API users cannot journal duplicates.  The
   common already-distinct case allocates nothing. *)
let distinct tokens =
  let n = Array.length tokens in
  let dup = ref false in
  (try
     let seen = Hashtbl.create (2 * n) in
     Array.iter
       (fun tok ->
         if Hashtbl.mem seen tok then begin
           dup := true;
           raise Exit
         end
         else Hashtbl.add seen tok ())
       tokens
   with Exit -> ());
  if not !dup then tokens
  else begin
    let seen = Hashtbl.create (2 * n) in
    Array.of_list
      (List.filter
         (fun tok ->
           if Hashtbl.mem seen tok then false
           else begin
             Hashtbl.add seen tok ();
             true
           end)
         (Array.to_list tokens))
  end

let train t ~user label tokens =
  run_op t user
    { op_kind = `Train; op_label = label; op_k = 1; op_tokens = distinct tokens }

let train_many t ~user label tokens k =
  if k < 0 then invalid_arg "Store.train_many: negative count";
  if k > 0 then
    run_op t user
      {
        op_kind = `Train;
        op_label = label;
        op_k = k;
        op_tokens = distinct tokens;
      }

let untrain t ~user label tokens =
  run_op t user
    { op_kind = `Untrain; op_label = label; op_k = 1; op_tokens = distinct tokens }

let iter_inited_shards t f =
  Array.iter
    (fun sh -> Mutex.protect sh.sh_lock (fun () -> if sh.sh_inited then f sh))
    t.shards

let commit t =
  iter_inited_shards t (fun sh -> commit_shard t sh ~force_compact:false)

let compact_all t =
  match t.dir with
  | None -> ()
  | Some _ ->
      Array.iter
        (fun sh ->
          Mutex.protect sh.sh_lock (fun () ->
              init_shard t sh;
              commit_shard t sh ~force_compact:true))
        t.shards

let evict_all t =
  Mutex.protect t.mem_lock (fun () -> Hashtbl.reset t.mem);
  Array.iter
    (fun sh ->
      Mutex.protect sh.sh_lock (fun () ->
          Hashtbl.reset sh.sh_cache;
          sh.sh_head <- None;
          sh.sh_tail <- None))
    t.shards

let close t =
  iter_inited_shards t (fun sh ->
      commit_shard t sh ~force_compact:false;
      Option.iter Unix.close sh.sh_jfd;
      sh.sh_jfd <- None;
      Option.iter Unix.close sh.sh_sfd;
      sh.sh_sfd <- None;
      sh.sh_inited <- false)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  journal_bytes : int;
  journal_ops : int;
  compactions : int;
  cached : int;
}

let stats t =
  let cached = ref (Mutex.protect t.mem_lock (fun () -> Hashtbl.length t.mem)) in
  Array.iter
    (fun sh ->
      Mutex.protect sh.sh_lock (fun () ->
          cached := !cached + Hashtbl.length sh.sh_cache))
    t.shards;
  {
    hits = Atomic.get t.s_hits;
    misses = Atomic.get t.s_misses;
    evictions = Atomic.get t.s_evictions;
    journal_bytes = Atomic.get t.s_journal_bytes;
    journal_ops = Atomic.get t.s_journal_ops;
    compactions = Atomic.get t.s_compactions;
    cached = !cached;
  }

(* ------------------------------------------------------------------ *)
(* Offline verification. *)

type shard_report = {
  shard : int;
  seg_users : int;
  seg_rows : int;
  segment : [ `Ok | `Missing | `Corrupt of string ];
  journal :
    [ `Ok of int
    | `Torn of int * int
    | `Stale
    | `Missing
    | `Corrupt of string ];
}

type dir_report = {
  dir_shards : int;
  dir_users : int;
  dir_rows : int;
  dir_ops : int;
  shard_reports : shard_report list;
  prior_ok : (Token_db.verify_report, string) result;
}

let is_store_dir dir =
  match read_file (manifest_path dir) with
  | None -> false
  | Some data -> String.starts_with ~prefix:(manifest_magic ^ " ") data

(* Full segment validation: everything the open path checks, plus the
   canonical-form invariants (strictly sorted users, strictly sorted
   rows, counts within the user's message totals). *)
let verify_segment ~shard ~nshards data =
  let last_user = ref "" in
  let first = ref true in
  let seen_crc = ref 0 in
  let check_user user nspam nham nrows rows_off =
    if (not !first) && String.compare !last_user user >= 0 then
      failwith (Printf.sprintf "users out of order at %S" user);
    first := false;
    last_user := user;
    let pos = ref rows_off in
    let last_tok = ref "" in
    let first_tok = ref true in
    for _ = 1 to nrows do
      match next_line data !pos with
      | None -> failwith "truncated rows"
      | Some (line, nxt) -> (
          pos := nxt;
          match String.split_on_char '\t' line with
          | [ etok; s; h ] -> (
              match
                ( Token_db.unescape_token etok,
                  int_of_string_opt s,
                  int_of_string_opt h )
              with
              | Ok tok, Some spam, Some ham ->
                  if spam < 0 || ham < 0 then
                    failwith (Printf.sprintf "negative count for %S" tok);
                  if spam > nspam || ham > nham then
                    failwith
                      (Printf.sprintf
                         "count exceeds user message totals for %S" tok);
                  if (not !first_tok) && String.compare !last_tok tok >= 0
                  then failwith (Printf.sprintf "rows out of order at %S" tok);
                  first_tok := false;
                  last_tok := tok
              | _ -> failwith (Printf.sprintf "bad row %S" line))
          | _ -> failwith (Printf.sprintf "bad row %S" line))
    done
  in
  match
    walk_segment ~expect_shard:shard ~expect_nshards:nshards data
      ~on_user:(fun user nspam nham nrows _ _ rows_off ->
        check_user user nspam nham nrows rows_off)
  with
  | Ok (crc, users, rows) ->
      seen_crc := crc;
      Ok (crc, users, rows)
  | Error e -> Error e
  | exception Failure e -> Error e

let verify_journal ~shard ~nshards ~seg_crc data =
  match next_line data 0 with
  | None -> `Corrupt "truncated journal header"
  | Some (hdr, p0) -> (
      match parse_jrn_header hdr with
      | Error e -> `Corrupt e
      | Ok (sid, ns, jcrc) ->
          if sid <> shard || ns <> nshards then
            `Corrupt "header does not match shard/manifest"
          else if
            (match seg_crc with Some c -> jcrc <> c | None -> false)
          then `Stale
          else begin
            let pos = ref p0 in
            let committed = ref 0 and since_commit = ref 0 in
            let torn = ref false in
            let continue = ref true in
            while !continue do
              match next_line data !pos with
              | None ->
                  if !pos < String.length data then torn := true;
                  continue := false
              | Some (line, nxt) -> (
                  match parse_op_line line with
                  | `Commit ->
                      committed := !committed + !since_commit;
                      since_commit := 0;
                      pos := nxt
                  | `Op _ ->
                      incr since_commit;
                      pos := nxt
                  | `Bad _ ->
                      torn := true;
                      continue := false)
            done;
            if !torn || !since_commit > 0 then
              `Torn (!committed, !since_commit)
            else `Ok !committed
          end)

let verify_dir dir =
  match read_file (manifest_path dir) with
  | None -> Error (Printf.sprintf "%s: no store manifest" dir)
  | Some data -> (
      match next_line data 0 with
      | None -> Error "truncated manifest"
      | Some (line, _) -> (
          match String.split_on_char ' ' line with
          | [ magic; v; ns ] when magic = manifest_magic -> (
              match (int_of_string_opt v, int_of_string_opt ns) with
              | Some 1, Some nshards when nshards >= 1 && nshards <= 9999 ->
                  let reports =
                    List.init nshards (fun s ->
                        let seg_users = ref 0 and seg_rows = ref 0 in
                        let seg_crc = ref None in
                        let segment =
                          match read_file (seg_path dir s) with
                          | None ->
                              seg_crc := Some 0;
                              `Missing
                          | Some data -> (
                              match
                                verify_segment ~shard:s ~nshards data
                              with
                              | Ok (crc, users, rows) ->
                                  seg_crc := Some crc;
                                  seg_users := users;
                                  seg_rows := rows;
                                  `Ok
                              | Error e -> `Corrupt e)
                        in
                        let journal =
                          match read_file (jrn_path dir s) with
                          | None -> `Missing
                          | Some data ->
                              verify_journal ~shard:s ~nshards
                                ~seg_crc:!seg_crc data
                        in
                        {
                          shard = s;
                          seg_users = !seg_users;
                          seg_rows = !seg_rows;
                          segment;
                          journal;
                        })
                  in
                  let users =
                    List.fold_left (fun a r -> a + r.seg_users) 0 reports
                  in
                  let rows =
                    List.fold_left (fun a r -> a + r.seg_rows) 0 reports
                  in
                  let ops =
                    List.fold_left
                      (fun a r ->
                        match r.journal with
                        | `Ok n | `Torn (n, _) -> a + n
                        | _ -> a)
                      0 reports
                  in
                  let prior_ok =
                    match read_file (prior_path dir) with
                    | None -> Error "missing prior.db"
                    | Some data -> Token_db.verify_string data
                  in
                  Ok
                    {
                      dir_shards = nshards;
                      dir_users = users;
                      dir_rows = rows;
                      dir_ops = ops;
                      shard_reports = reports;
                      prior_ok;
                    }
              | _ -> Error "bad manifest")
          | _ -> Error "not a spamlab store directory"))
